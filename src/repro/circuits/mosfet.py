"""Deep-submicron MOSFET model — the paper's eqn (1).

    ID = 1/2 * u*Cox * W/L * (VGS-VT)^2 * (1 - (VGS-VT)/(Esat*L)) * (1 + lambda*VDS)
         -----------------------------------------------------------------------
               1 + theta1*(VGS+VT-VK)^(1/3) + theta2*(VGS+VT-VK)^n

with n = 1 for NMOS and 2 for PMOS.  The numerator combines square-law
conduction with first-order velocity saturation and channel-length
modulation; the denominator is an advanced mobility-degradation fit.

All functions are vectorized: ``w``, ``l``, ``vgs``, ``vds``, ``ids`` may
be scalars or broadcastable numpy arrays, and every voltage is the
*magnitude* of the respective quantity (PMOS handled by its own
:class:`~repro.circuits.technology.DeviceParams`).  The model covers the
saturation region, which is where every transistor of the op-amp must
operate (the sizing problem constrains this explicitly); the
velocity-saturation factor is clamped at :data:`MIN_VSAT_FACTOR` so that
out-of-range candidates degrade smoothly instead of producing negative
currents.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.circuits.technology import DeviceParams

MIN_VSAT_FACTOR = 0.05
_EPS = 1e-12


class MosfetModel:
    """Eqn (1) evaluated for one device type.

    Parameters
    ----------
    dev:
        Device parameters (NMOS or PMOS card).
    """

    def __init__(self, dev: DeviceParams) -> None:
        self.dev = dev

    # ----------------------------------------------------------- internals

    def _mobility_denominator(self, vgs: np.ndarray) -> np.ndarray:
        d = self.dev
        u = np.maximum(vgs + d.vt0 - d.vk, 0.0)
        return 1.0 + d.theta1 * np.cbrt(u) + d.theta2 * u**d.mobility_exponent

    def _mobility_denominator_derivative(self, vgs: np.ndarray) -> np.ndarray:
        d = self.dev
        u = np.maximum(vgs + d.vt0 - d.vk, 0.0)
        # d/dVGS of theta1*u^(1/3): theta1/3 * u^(-2/3); guarded at u = 0.
        cbrt_term = np.where(
            u > _EPS, d.theta1 / 3.0 * u ** (-2.0 / 3.0), 0.0
        )
        power_term = (
            d.theta2 * d.mobility_exponent * u ** max(d.mobility_exponent - 1, 0)
        )
        return cbrt_term + power_term

    def _vsat_factor(self, vov: np.ndarray, l: np.ndarray) -> np.ndarray:
        return np.maximum(1.0 - vov / (self.dev.esat * l), MIN_VSAT_FACTOR)

    # ------------------------------------------------------------- currents

    def drain_current(
        self, w: np.ndarray, l: np.ndarray, vgs: np.ndarray, vds: np.ndarray
    ) -> np.ndarray:
        """Saturation drain current of eqn (1); 0 below threshold."""
        d = self.dev
        w, l, vgs, vds = np.broadcast_arrays(
            np.asarray(w, float), np.asarray(l, float),
            np.asarray(vgs, float), np.asarray(vds, float),
        )
        vov = np.maximum(vgs - d.vt0, 0.0)
        core = 0.5 * d.kprime * (w / l) * vov**2
        num = core * self._vsat_factor(vov, l) * (1.0 + (d.lambda_l / l) * vds)
        return num / self._mobility_denominator(vgs)

    def transconductance(
        self, w: np.ndarray, l: np.ndarray, vgs: np.ndarray, vds: np.ndarray
    ) -> np.ndarray:
        """gm = dID/dVGS (analytic)."""
        d = self.dev
        w, l, vgs, vds = np.broadcast_arrays(
            np.asarray(w, float), np.asarray(l, float),
            np.asarray(vgs, float), np.asarray(vds, float),
        )
        vov = np.maximum(vgs - d.vt0, 0.0)
        k = 0.5 * d.kprime * (w / l) * (1.0 + (d.lambda_l / l) * vds)
        esat_l = d.esat * l
        raw_factor = 1.0 - vov / esat_l
        clamped = raw_factor <= MIN_VSAT_FACTOR
        # f(vov) = vov^2 * (1 - vov/EsatL);  f' = 2 vov - 3 vov^2 / EsatL
        f = vov**2 * np.where(clamped, MIN_VSAT_FACTOR, raw_factor)
        fprime = np.where(
            clamped, 2.0 * vov * MIN_VSAT_FACTOR, 2.0 * vov - 3.0 * vov**2 / esat_l
        )
        den = self._mobility_denominator(vgs)
        dden = self._mobility_denominator_derivative(vgs)
        gm = k * (fprime * den - f * dden) / den**2
        return np.maximum(gm, 0.0)

    def output_conductance(
        self, w: np.ndarray, l: np.ndarray, vgs: np.ndarray, vds: np.ndarray
    ) -> np.ndarray:
        """gds = dID/dVDS = ID * lambda / (1 + lambda*VDS)."""
        l_arr = np.asarray(l, float)
        lam = self.dev.lambda_l / l_arr
        ids = self.drain_current(w, l, vgs, vds)
        return ids * lam / (1.0 + lam * np.asarray(vds, float))

    # --------------------------------------------------------- bias solving

    def vgs_for_current(
        self,
        w: np.ndarray,
        l: np.ndarray,
        ids: np.ndarray,
        vds: np.ndarray,
        vov_max: float = 1.2,
        iterations: int = 36,
    ) -> np.ndarray:
        """Solve VGS such that ``drain_current(...) == ids`` (vectorized bisection).

        The current is monotonically increasing in VGS throughout the
        usable overdrive range, so bisection on
        ``[vt0 + 1 mV, vt0 + vov_max]`` converges unconditionally.  Targets
        beyond the device's reach saturate at the bracket edge (the region
        and matching constraints will then flag the design as infeasible).
        """
        d = self.dev
        w, l, ids, vds = np.broadcast_arrays(
            np.asarray(w, float), np.asarray(l, float),
            np.asarray(ids, float), np.asarray(vds, float),
        )
        # d.vt0 may itself be an array (stacked corner / Monte-Carlo
        # technologies), so build the brackets by broadcasting, not np.full.
        base = np.zeros(np.broadcast(w, np.asarray(d.vt0, float)).shape)
        lo = base + np.asarray(d.vt0, float) + 1e-3
        hi = base + np.asarray(d.vt0, float) + vov_max
        for _ in range(iterations):
            mid = 0.5 * (lo + hi)
            too_low = self.drain_current(w, l, mid, vds) < ids
            lo = np.where(too_low, mid, lo)
            hi = np.where(too_low, hi, mid)
        return 0.5 * (lo + hi)

    def vdsat(self, vgs: np.ndarray, l: np.ndarray) -> np.ndarray:
        """Saturation voltage with velocity saturation:
        ``Vdsat = Vov / (1 + Vov / (Esat*L))`` (reduces to Vov for long L)."""
        vov = np.maximum(np.asarray(vgs, float) - self.dev.vt0, 0.0)
        esat_l = self.dev.esat * np.asarray(l, float)
        return vov / (1.0 + vov / esat_l)

    # ---------------------------------------------------------- capacitance

    def gate_source_cap(self, w: np.ndarray, l: np.ndarray) -> np.ndarray:
        """Cgs in saturation: (2/3) W L Cox + overlap."""
        w = np.asarray(w, float)
        l = np.asarray(l, float)
        return (2.0 / 3.0) * w * l * self.dev.cox + self.dev.cov * w

    def gate_drain_cap(self, w: np.ndarray) -> np.ndarray:
        """Cgd in saturation: overlap only."""
        return self.dev.cov * np.asarray(w, float)

    def drain_bulk_cap(self, w: np.ndarray) -> np.ndarray:
        """Drain junction capacitance: area + sidewall of the diffusion."""
        w = np.asarray(w, float)
        d = self.dev
        return d.cj * w * d.ldif + d.cjsw * (w + 2.0 * d.ldif)

    # -------------------------------------------------------------- checks

    def saturation_margin(
        self, vds: np.ndarray, vgs: np.ndarray, l: np.ndarray
    ) -> np.ndarray:
        """``VDS - Vdsat``; positive means safely in saturation."""
        return np.asarray(vds, float) - self.vdsat(vgs, l)

    def velocity_headroom(self, vgs: np.ndarray, l: np.ndarray) -> np.ndarray:
        """``1 - Vov/(Esat*L)`` before clamping; <= MIN_VSAT_FACTOR means the
        candidate drove the device outside the model's validity range."""
        vov = np.maximum(np.asarray(vgs, float) - self.dev.vt0, 0.0)
        return 1.0 - vov / (self.dev.esat * np.asarray(l, float))


def operating_point(
    model: MosfetModel,
    w: np.ndarray,
    l: np.ndarray,
    ids: np.ndarray,
    vds: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Convenience: solve bias and return ``(vgs, gm, gds, vdsat)``."""
    vgs = model.vgs_for_current(w, l, ids, vds)
    gm = model.transconductance(w, l, vgs, vds)
    gds = model.output_conductance(w, l, vgs, vds)
    vdsat = model.vdsat(vgs, l)
    return vgs, gm, gds, vdsat
