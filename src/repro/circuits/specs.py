"""Integrator specification sets.

The paper evaluates 20 specification sets "graded by their level of
difficulty" and publishes the numbers for one of them:

    DR >= 96 dB, OR >= 1.4 V, ST <= 0.24 us, SE <= 7e-4, Robustness >= 0.85

:func:`published_spec` reproduces that case; :func:`spec_ladder` generates
the 20-step difficulty ladder used by the trend experiments (T1), with the
published case sitting at its documented rung.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np


@dataclass(frozen=True)
class IntegratorSpec:
    """Constraint set of the sizing problem (all SI units; DR in dB).

    The first five fields are the paper's named specification; the rest
    are the implicit circuit-level requirements the paper describes in
    prose (operating regions, matching across corners, stability, area).
    """

    name: str
    dr_min_db: float
    or_min: float  # differential output range (V)
    st_max: float  # settling time (s)
    se_max: float  # static settling error (relative)
    robustness_min: float
    area_max: float = 5.0e-8  # m^2 (50,000 um^2)
    pm_min_deg: float = 60.0
    offset_max: float = 2.0e-3  # V, systematic + mismatch, worst corner
    sat_margin_min: float = 0.05  # V, every device, worst corner

    def __post_init__(self) -> None:
        if self.st_max <= 0 or self.se_max <= 0 or self.area_max <= 0:
            raise ValueError(f"{self.name}: non-positive spec limits")
        if not 0.0 <= self.robustness_min <= 1.0:
            raise ValueError(
                f"{self.name}: robustness_min must lie in [0, 1], "
                f"got {self.robustness_min}"
            )

    def describe(self) -> str:
        return (
            f"{self.name}: DR>={self.dr_min_db:.0f}dB OR>={self.or_min:.2f}V "
            f"ST<={self.st_max * 1e6:.2f}us SE<={self.se_max:.1e} "
            f"Rob>={self.robustness_min:.2f}"
        )


def published_spec() -> IntegratorSpec:
    """The specification set the paper publishes explicit figures for."""
    return IntegratorSpec(
        name="published",
        dr_min_db=96.0,
        or_min=1.4,
        st_max=0.24e-6,
        se_max=7.0e-4,
        robustness_min=0.85,
    )


# Rung of the ladder (0-based) whose difficulty matches the published set.
PUBLISHED_RUNG = 12


def spec_ladder(n_specs: int = 20) -> List[IntegratorSpec]:
    """A difficulty-graded ladder of *n_specs* specification sets.

    Rung 0 is loose, the last rung tight; difficulty is interpolated
    per-spec between the two endpoints below.  The endpoints are chosen
    so that rung :data:`PUBLISHED_RUNG` (of a 20-rung ladder) coincides
    with :func:`published_spec` on the five published limits.
    """
    if n_specs < 2:
        raise ValueError(f"need at least 2 specs for a ladder, got {n_specs}")
    t_published = PUBLISHED_RUNG / 19.0
    # endpoint values: loose (t=0) and tight (t=1) chosen so that the
    # published values land exactly at t_published.
    loose = {
        "dr_min_db": 90.0,
        "or_min": 1.20,
        "st_max": 0.42e-6,
        "se_max": 2.0e-3,
        "robustness_min": 0.70,
        "area_max": 7.0e-8,
    }
    published = {
        "dr_min_db": 96.0,
        "or_min": 1.40,
        "st_max": 0.24e-6,
        "se_max": 7.0e-4,
        "robustness_min": 0.85,
        "area_max": 5.0e-8,
    }
    # Specs that tighten downward (times, errors, area) are interpolated
    # geometrically so the extrapolated tight end stays positive; the rest
    # (dB, volts, probability) linearly.
    geometric = {"st_max", "se_max", "area_max"}
    tight = {}
    for key in loose:
        if key in geometric:
            tight[key] = loose[key] * (published[key] / loose[key]) ** (
                1.0 / t_published
            )
        else:
            tight[key] = loose[key] + (published[key] - loose[key]) / t_published
    specs = []
    for i in range(n_specs):
        t = i / (n_specs - 1.0)
        values = {}
        for key in loose:
            if key in geometric:
                values[key] = float(loose[key] * (tight[key] / loose[key]) ** t)
            else:
                values[key] = float(
                    np.interp(t, [0.0, 1.0], [loose[key], tight[key]])
                )
        specs.append(
            IntegratorSpec(
                name=f"spec-{i:02d}",
                dr_min_db=values["dr_min_db"],
                or_min=values["or_min"],
                st_max=values["st_max"],
                se_max=values["se_max"],
                robustness_min=values["robustness_min"],
                area_max=values["area_max"],
            )
        )
    return specs
