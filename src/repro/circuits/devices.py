"""Passive devices: integrated capacitors and MOS switches.

The paper stresses that "bottom-plate parasitic capacitances of standard
integrated capacitors and drain diffusion and overlap capacitances of
MOSFETs" are included for accurate behaviour prediction — this module
models exactly those parasitics for the capacitor side.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.technology import Technology


@dataclass(frozen=True)
class CapacitorModel:
    """An integrated (MIM / double-poly) capacitor with parasitics.

    Attributes
    ----------
    density:
        Capacitance per area (F/m^2).
    bottom_ratio:
        Bottom-plate parasitic to substrate as a fraction of the main C.
    """

    density: float
    bottom_ratio: float

    @classmethod
    def from_technology(cls, tech: Technology) -> "CapacitorModel":
        return cls(density=tech.cap_density, bottom_ratio=tech.cap_bottom_ratio)

    def area(self, c: np.ndarray) -> np.ndarray:
        """Layout area (m^2) of a capacitor of value *c* (F)."""
        return np.asarray(c, float) / self.density

    def bottom_plate(self, c: np.ndarray) -> np.ndarray:
        """Bottom-plate parasitic capacitance (F) of a capacitor of value *c*."""
        return self.bottom_ratio * np.asarray(c, float)


def switch_on_resistance(
    tech: Technology,
    w: np.ndarray,
    l: np.ndarray = None,
    vgs: float = None,
) -> np.ndarray:
    """Triode on-resistance of an NMOS sampling switch.

    ``Ron = 1 / (u*Cox * W/L * (VGS - VT))`` — first-order triode model,
    sufficient for checking that the switch time constant is negligible
    against the op-amp settling budget.
    """
    d = tech.nmos
    w = np.asarray(w, float)
    l_arr = np.asarray(l if l is not None else tech.min_length, float)
    drive = (vgs if vgs is not None else tech.vdd) - d.vt0
    if np.any(np.asarray(drive) <= 0):
        raise ValueError("switch gate drive must exceed the threshold voltage")
    return 1.0 / (d.kprime * (w / l_arr) * drive)


def switch_time_constant(
    tech: Technology,
    w: np.ndarray,
    c_sample: np.ndarray,
    l: np.ndarray = None,
) -> np.ndarray:
    """RC time constant of a sampling switch driving *c_sample*."""
    return switch_on_resistance(tech, w, l) * np.asarray(c_sample, float)


def switch_charge_injection(
    tech: Technology,
    w: np.ndarray,
    c_sample: np.ndarray,
    l: np.ndarray = None,
) -> np.ndarray:
    """Half-channel charge injection voltage step onto *c_sample* (V).

    ``dV = W*L*Cox*(VDD - VT) / (2*C)`` — the classic worst-case estimate.
    CDS cancels the signal-independent part; the residue enters the
    settling-error budget.
    """
    d = tech.nmos
    w = np.asarray(w, float)
    l_arr = np.asarray(l if l is not None else tech.min_length, float)
    q_channel = w * l_arr * d.cox * (tech.vdd - d.vt0)
    return q_channel / (2.0 * np.asarray(c_sample, float))
