"""Shared utilities: RNG handling, Pareto primitives, validation helpers."""

from repro.utils.rng import as_rng, spawn_rngs, stable_seed, bounded_uniform
from repro.utils.pareto import (
    dominates,
    weakly_dominates,
    constrained_dominates,
    pareto_mask,
    pareto_filter,
    merge_fronts,
)
from repro.utils.validation import (
    check_positive,
    check_in_range,
    check_shape,
    check_probability,
    check_bounds,
)

__all__ = [
    "as_rng",
    "spawn_rngs",
    "stable_seed",
    "bounded_uniform",
    "dominates",
    "weakly_dominates",
    "constrained_dominates",
    "pareto_mask",
    "pareto_filter",
    "merge_fronts",
    "check_positive",
    "check_in_range",
    "check_shape",
    "check_probability",
    "check_bounds",
]

# repro.utils.serialization is intentionally not re-exported here: it
# depends on repro.core (results), which itself imports repro.utils —
# import it as `from repro.utils import serialization` directly.
