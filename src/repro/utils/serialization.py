"""JSON serialization of optimization results.

Keeps long experiment campaigns restartable and lets the benchmarks
persist the measured series that EXPERIMENTS.md reports.  Only plain
JSON types are written; numpy arrays round-trip as nested lists.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

from repro.core.results import GenerationRecord, OptimizationResult

PathLike = Union[str, Path]


#: Timing fields stripped by ``include_timing=False`` — everything else
#: in a result is deterministic given (seed, config), and these are the
#: only wall-clock-dependent values, so the stripped payload is
#: byte-identical across reruns (locked in by
#: ``tests/core/test_determinism_regression.py``).
TIMING_EXTRAS = ("eval_time_s",)


def result_to_dict(
    result: OptimizationResult,
    include_history: bool = True,
    include_population: bool = False,
    include_timing: bool = True,
) -> Dict[str, Any]:
    """Plain-dict view of a result (see :func:`save_result`).

    ``include_timing=False`` zeroes/strips wall-clock fields
    (``wall_time``, backend ``eval_time``, per-record timing extras) so
    two runs with the same seed and config serialize byte-identically.
    """
    metadata = _jsonable(result.metadata)
    if not include_timing and isinstance(metadata.get("backend_stats"), dict):
        metadata["backend_stats"].pop("eval_time", None)
    payload: Dict[str, Any] = {
        "algorithm": result.algorithm,
        "problem": result.problem_name,
        "front_x": np.asarray(result.front_x).tolist(),
        "front_objectives": np.asarray(result.front_objectives).tolist(),
        "n_generations": int(result.n_generations),
        "n_evaluations": int(result.n_evaluations),
        "wall_time": float(result.wall_time) if include_timing else 0.0,
        "metadata": metadata,
    }
    if include_history:
        history = []
        for rec in result.history:
            extras = _jsonable(rec.extras)
            if not include_timing:
                for key in TIMING_EXTRAS:
                    extras.pop(key, None)
            history.append(
                {
                    "generation": rec.generation,
                    "n_feasible": rec.n_feasible,
                    "front_objectives": np.asarray(rec.front_objectives).tolist(),
                    "n_evaluations": rec.n_evaluations,
                    "extras": extras,
                }
            )
        payload["history"] = history
    if include_population and result.population is not None:
        payload["population"] = {
            "x": result.population.x.tolist(),
            "objectives": result.population.objectives.tolist(),
            "violation": result.population.violation.tolist(),
        }
    return payload


def save_result(result: OptimizationResult, path: PathLike, **kwargs) -> Path:
    """Write *result* as JSON; returns the resolved path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        json.dump(result_to_dict(result, **kwargs), fh, indent=2)
    return path


def load_result_dict(path: PathLike) -> Dict[str, Any]:
    """Load a result previously written by :func:`save_result`.

    Arrays come back as numpy arrays (``front_x``, ``front_objectives``
    and per-record fronts); the rest stays plain.
    """
    with Path(path).open() as fh:
        payload = json.load(fh)
    payload["front_x"] = np.asarray(payload["front_x"], dtype=float)
    payload["front_objectives"] = np.asarray(
        payload["front_objectives"], dtype=float
    )
    for rec in payload.get("history", []):
        rec["front_objectives"] = np.asarray(rec["front_objectives"], dtype=float)
    return payload


def history_from_dicts(records) -> "list[GenerationRecord]":
    """Rebuild GenerationRecord objects from a loaded payload."""
    out = []
    for rec in records:
        out.append(
            GenerationRecord(
                generation=int(rec["generation"]),
                n_feasible=int(rec["n_feasible"]),
                front_objectives=np.asarray(rec["front_objectives"], dtype=float),
                n_evaluations=int(rec["n_evaluations"]),
                extras=dict(rec.get("extras", {})),
            )
        )
    return out


def _jsonable(value: Any) -> Any:
    """Recursively convert numpy scalars/arrays into JSON-safe values."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    return value
