"""Small argument-validation helpers used across the library.

These raise early, with messages naming the offending argument, so that
configuration errors surface at construction time rather than deep inside
a 1000-generation run.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

import numpy as np

Number = Union[int, float]


def check_positive(name: str, value: Number, strict: bool = True) -> None:
    """Raise ``ValueError`` unless *value* is positive (or >= 0 when not strict)."""
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_in_range(
    name: str,
    value: Number,
    low: Number,
    high: Number,
    inclusive: Tuple[bool, bool] = (True, True),
) -> None:
    """Raise ``ValueError`` unless ``low <?= value <?= high``."""
    lo_ok = value >= low if inclusive[0] else value > low
    hi_ok = value <= high if inclusive[1] else value < high
    if not (lo_ok and hi_ok):
        lo_b = "[" if inclusive[0] else "("
        hi_b = "]" if inclusive[1] else ")"
        raise ValueError(f"{name} must lie in {lo_b}{low}, {high}{hi_b}, got {value!r}")


def check_probability(name: str, value: Number) -> None:
    """Raise ``ValueError`` unless *value* is a probability in [0, 1]."""
    check_in_range(name, value, 0.0, 1.0)


def check_shape(name: str, array: np.ndarray, shape: Sequence[int]) -> None:
    """Raise ``ValueError`` unless *array* has the expected shape.

    A ``-1`` entry in *shape* matches any extent in that axis.
    """
    arr = np.asarray(array)
    expected = tuple(shape)
    if arr.ndim != len(expected):
        raise ValueError(
            f"{name} must have {len(expected)} dimensions, got {arr.ndim}"
        )
    for axis, want in enumerate(expected):
        if want != -1 and arr.shape[axis] != want:
            raise ValueError(
                f"{name} has shape {arr.shape}, expected {expected} "
                f"(mismatch on axis {axis})"
            )


def check_bounds(lower: np.ndarray, upper: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Validate and normalize a bound pair to float arrays."""
    # Copy so that callers mutating problem bounds (e.g. to pin a design
    # variable) can never alias a module-level constant array.
    lo = np.array(lower, dtype=float, copy=True).ravel()
    hi = np.array(upper, dtype=float, copy=True).ravel()
    if lo.shape != hi.shape:
        raise ValueError(f"bound shapes differ: {lo.shape} vs {hi.shape}")
    if lo.size == 0:
        raise ValueError("bounds must be non-empty")
    if not (np.all(np.isfinite(lo)) and np.all(np.isfinite(hi))):
        raise ValueError("bounds must be finite")
    if np.any(hi <= lo):
        bad = int(np.flatnonzero(hi <= lo)[0])
        raise ValueError(
            f"upper bound must exceed lower bound in every dimension "
            f"(dimension {bad}: [{lo[bad]}, {hi[bad]}])"
        )
    return lo, hi
