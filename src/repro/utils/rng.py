"""Deterministic random-number-generator plumbing.

Every stochastic component in the library accepts either a seed, an
existing :class:`numpy.random.Generator`, or ``None`` (fresh OS entropy)
and normalizes it through :func:`as_rng`.  Multi-run experiments derive
independent child generators with :func:`spawn_rngs` so that runs are
reproducible yet statistically independent.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_rng(seed: RngLike = None) -> np.random.Generator:
    """Normalize *seed* into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an ``int`` seed, a ``SeedSequence``, or
        an existing ``Generator`` (returned unchanged).

    Returns
    -------
    numpy.random.Generator
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(f"cannot interpret {type(seed).__name__!r} as an RNG source")


def spawn_rngs(seed: RngLike, count: int) -> List[np.random.Generator]:
    """Derive *count* independent generators from a single seed source.

    Uses ``SeedSequence.spawn`` semantics so the children are independent
    of each other and of the parent stream.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.SeedSequence):
        seq = seed
    elif isinstance(seed, np.random.Generator):
        # Derive a seed sequence from the generator's stream so repeated
        # calls advance deterministically.
        seq = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def stable_seed(*parts: Union[int, str]) -> int:
    """Hash heterogeneous *parts* into a stable 63-bit seed.

    Useful to key a deterministic RNG off an experiment id and run index
    without collisions between experiments.
    """
    mask = (1 << 64) - 1
    acc = 1469598103934665603  # FNV-1a offset basis
    prime = 1099511628211
    for part in parts:
        # Delimit each part so ("a", "bc") and ("ab", "c") hash differently.
        data = str(part).encode("utf-8") + b"\x1f"
        for byte in data:
            acc = ((acc ^ byte) * prime) & mask
    return acc & 0x7FFFFFFFFFFFFFFF


def bounded_uniform(
    rng: np.random.Generator,
    lower: np.ndarray,
    upper: np.ndarray,
    size: Optional[int] = None,
) -> np.ndarray:
    """Sample uniformly inside a box ``[lower, upper]``.

    Parameters
    ----------
    rng:
        Source generator.
    lower, upper:
        Per-dimension bounds, shape ``(n_var,)``.
    size:
        If given, returns shape ``(size, n_var)``; otherwise ``(n_var,)``.
    """
    lower = np.asarray(lower, dtype=float)
    upper = np.asarray(upper, dtype=float)
    if lower.shape != upper.shape:
        raise ValueError("lower/upper bound shapes differ")
    if np.any(upper < lower):
        raise ValueError("upper bound below lower bound")
    shape = lower.shape if size is None else (size,) + lower.shape
    return rng.uniform(lower, upper, size=shape)
