"""Pareto-dominance primitives (minimization convention throughout).

All objective arrays are ``(n_points, n_obj)`` float arrays; constraint
violation vectors are ``(n_points,)`` with 0.0 meaning feasible and
positive values meaning total violation magnitude.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def dominates(a: np.ndarray, b: np.ndarray) -> bool:
    """Return ``True`` if objective vector *a* Pareto-dominates *b*.

    *a* dominates *b* when it is no worse in every objective and strictly
    better in at least one (minimization).
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return bool(np.all(a <= b) and np.any(a < b))


def weakly_dominates(a: np.ndarray, b: np.ndarray) -> bool:
    """Return ``True`` if *a* is no worse than *b* in every objective."""
    return bool(np.all(np.asarray(a, dtype=float) <= np.asarray(b, dtype=float)))


def constrained_dominates(
    a_obj: np.ndarray,
    b_obj: np.ndarray,
    a_violation: float = 0.0,
    b_violation: float = 0.0,
) -> bool:
    """Deb's constrained-dominance rule.

    1. A feasible solution dominates any infeasible one.
    2. Between two infeasible solutions the smaller total violation wins.
    3. Between two feasible solutions ordinary Pareto dominance applies.
    """
    a_feasible = a_violation <= 0.0
    b_feasible = b_violation <= 0.0
    if a_feasible and not b_feasible:
        return True
    if b_feasible and not a_feasible:
        return False
    if not a_feasible:  # both infeasible
        return a_violation < b_violation
    return dominates(a_obj, b_obj)


def pareto_mask(
    objectives: np.ndarray,
    violations: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Boolean mask of the non-dominated points in *objectives*.

    With *violations* supplied, constrained dominance is used: any feasible
    point beats every infeasible one, and infeasible points compete by
    violation only.

    Duplicated points are all kept (a point never dominates an exact copy
    of itself).
    """
    objs = np.atleast_2d(np.asarray(objectives, dtype=float))
    n = objs.shape[0]
    if n == 0:
        return np.zeros(0, dtype=bool)
    if violations is None:
        violations = np.zeros(n)
    violations = np.asarray(violations, dtype=float).reshape(n)

    feasible = violations <= 0.0
    mask = np.ones(n, dtype=bool)
    if feasible.any():
        # Infeasible points are dominated outright by any feasible point.
        mask[~feasible] = False
        idx = np.flatnonzero(feasible)
        sub = objs[idx]
        keep = _pareto_mask_unconstrained(sub)
        mask[idx] = keep
    else:
        best = violations.min()
        mask = violations <= best
    return mask


def _pareto_mask_unconstrained(objs: np.ndarray) -> np.ndarray:
    """Non-dominated mask, plain minimization, O(n^2) vectorized by row."""
    n = objs.shape[0]
    keep = np.ones(n, dtype=bool)
    for i in range(n):
        if not keep[i]:
            continue
        # Points dominated by i: <= in all objectives and < in at least one.
        le = np.all(objs[i] <= objs, axis=1)
        lt = np.any(objs[i] < objs, axis=1)
        dominated = le & lt
        dominated[i] = False
        keep &= ~dominated
    return keep


def pareto_filter(
    objectives: np.ndarray,
    violations: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Indices of the non-dominated subset, in original order."""
    return np.flatnonzero(pareto_mask(objectives, violations))


def merge_fronts(*fronts: np.ndarray) -> np.ndarray:
    """Merge several objective arrays and return their joint Pareto front."""
    stacked = [np.atleast_2d(np.asarray(f, dtype=float)) for f in fronts if np.size(f)]
    if not stacked:
        return np.zeros((0, 0))
    allpts = np.vstack(stacked)
    return allpts[pareto_mask(allpts)]
