"""Diversity metrics for Pareto-front approximations.

The paper's complaint about NSGA-II is *poor diversity along the load
capacitance axis*; these metrics quantify exactly that:

* :func:`range_coverage` — fraction of a target interval of one
  objective that the front actually covers (the paper's "solutions were
  found to cluster mostly between 4 and 5 pF" is ``range_coverage ~ 0.2``).
* :func:`spacing` — Schott's spacing (uniformity of gaps).
* :func:`spread` — Deb's Delta spread indicator (needs extreme points).
* :func:`extent` — per-objective min/max envelope of the front.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def _as_front(points: np.ndarray) -> np.ndarray:
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    if pts.ndim != 2:
        raise ValueError(f"front must be 2-D, got shape {pts.shape}")
    return pts


def range_coverage(
    points: np.ndarray,
    axis: int,
    low: float,
    high: float,
    n_bins: int = 20,
) -> float:
    """Fraction of ``[low, high]`` bins (along objective *axis*) occupied.

    Returns a value in [0, 1]; 1.0 means every bin of the target range
    contains at least one solution.  Empty fronts score 0, and so do
    fronts lying entirely outside ``[low, high]`` — out-of-range points
    do not occupy any bin (they used to be clipped into the edge bins,
    crediting coverage the front does not have).
    """
    pts = _as_front(points)
    if pts.shape[0] == 0:
        return 0.0
    if not high > low:
        raise ValueError(f"high ({high}) must exceed low ({low})")
    if n_bins < 1:
        raise ValueError(f"n_bins must be >= 1, got {n_bins}")
    coord = pts[:, axis]
    coord = coord[(coord >= low) & (coord <= high)]
    if coord.size == 0:
        return 0.0
    bins = np.floor((coord - low) / (high - low) * n_bins).astype(int)
    # The only remaining boundary case is coord == high, which floors to
    # n_bins; fold it into the last bin.
    bins = np.minimum(bins, n_bins - 1)
    return float(np.unique(bins).size) / n_bins


def spacing(points: np.ndarray) -> float:
    """Schott's spacing: spread of nearest-neighbour L1 distances.

    Schott's formula uses the *sample* standard deviation — the squared
    deviations are divided by ``n - 1``, not ``n``.  Zero for perfectly
    uniform fronts; undefined (returns ``nan``) for fronts with fewer
    than 2 points.
    """
    pts = _as_front(points)
    n = pts.shape[0]
    if n < 2:
        return float("nan")
    # Pairwise L1 distances; exclude self by setting the diagonal high.
    diff = np.abs(pts[:, None, :] - pts[None, :, :]).sum(axis=2)
    np.fill_diagonal(diff, np.inf)
    d = diff.min(axis=1)
    return float(np.sqrt(np.sum((d - d.mean()) ** 2) / (n - 1)))


def spread(
    points: np.ndarray,
    ideal_extremes: Optional[np.ndarray] = None,
) -> float:
    """Deb's Delta spread indicator for 2-D fronts (lower = better).

    ``Delta = (d_f + d_l + sum|d_i - mean|) / (d_f + d_l + (n-1) * mean)``
    where ``d_f, d_l`` are distances from the front's ends to the ideal
    extreme points (0 if *ideal_extremes* is not given) and ``d_i`` are
    consecutive gaps along the front.
    """
    pts = _as_front(points)
    if pts.shape[1] != 2:
        raise ValueError("spread is defined here for 2-objective fronts")
    n = pts.shape[0]
    if n < 2:
        return float("nan")
    order = np.argsort(pts[:, 0], kind="stable")
    sorted_pts = pts[order]
    gaps = np.linalg.norm(np.diff(sorted_pts, axis=0), axis=1)
    mean_gap = gaps.mean()
    if ideal_extremes is not None:
        extremes = np.atleast_2d(np.asarray(ideal_extremes, dtype=float))
        if extremes.shape != (2, 2):
            raise ValueError("ideal_extremes must be a (2, 2) array")
        d_f = float(np.linalg.norm(sorted_pts[0] - extremes[0]))
        d_l = float(np.linalg.norm(sorted_pts[-1] - extremes[1]))
    else:
        d_f = d_l = 0.0
    denom = d_f + d_l + (n - 1) * mean_gap
    if denom <= 0:
        return 0.0
    return float((d_f + d_l + np.abs(gaps - mean_gap).sum()) / denom)


def extent(points: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Per-objective (min, max) envelope of the front."""
    pts = _as_front(points)
    if pts.shape[0] == 0:
        raise ValueError("extent of an empty front is undefined")
    return pts.min(axis=0), pts.max(axis=0)


def cluster_fraction(
    points: np.ndarray,
    axis: int,
    low: float,
    high: float,
) -> float:
    """Fraction of front members whose *axis* value lies in ``[low, high]``.

    Used to state results like "solutions cluster mostly between 4 and
    5 pF" quantitatively.
    """
    pts = _as_front(points)
    if pts.shape[0] == 0:
        return 0.0
    coord = pts[:, axis]
    return float(np.mean((coord >= low) & (coord <= high)))
