"""Quality metrics for Pareto-front approximations.

``hypervolume_paper`` is the metric of the paper's Section 4.2
(origin-anchored box union, lower = better); the rest are standard MOEA
indicators used for cross-checks and tests.
"""

from repro.metrics.hypervolume import (
    hypervolume_paper,
    hypervolume_ref,
    paper_unit_scale,
)
from repro.metrics.diversity import (
    range_coverage,
    spacing,
    spread,
    extent,
    cluster_fraction,
)
from repro.metrics.convergence import (
    generational_distance,
    inverted_generational_distance,
    epsilon_indicator,
)

__all__ = [
    "hypervolume_paper",
    "hypervolume_ref",
    "paper_unit_scale",
    "range_coverage",
    "spacing",
    "spread",
    "extent",
    "cluster_fraction",
    "generational_distance",
    "inverted_generational_distance",
    "epsilon_indicator",
]
