"""Hypervolume metrics.

Two variants are provided:

* :func:`hypervolume_paper` — Section 4.2 of the paper: for each solution
  build the hyperbox whose diagonal corners are the *origin* and the
  solution; the metric is the volume of the union of all boxes.  For a
  minimization front, *lower is better* (a front hugging the origin
  covers less volume).  The paper reports this in units of
  0.1 mW x pF for the integrator problem; pass ``scale`` to reproduce
  those units.  Note the caveat (discussed in EXPERIMENTS.md): the value
  is only comparable between fronts of similar coverage, which is how the
  paper uses it.

* :func:`hypervolume_ref` — the standard S-metric: volume dominated by
  the front up to a reference (nadir) point; *higher is better*.

Both are exact: 2-D cases use an O(n log n) sweep, higher dimensions a
recursive slicing (WFG-style) algorithm adequate for front sizes in the
hundreds.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.utils.pareto import pareto_mask


def _clean_front(points: np.ndarray) -> np.ndarray:
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    if pts.ndim != 2 or pts.shape[1] == 0:
        # A front with zero objectives has no volume to measure; treating
        # it as "empty front -> 0.0" would silently hide a caller bug
        # (e.g. np.asarray([]) or a bad reshape).
        raise ValueError(
            f"front must have at least one objective column, got shape {pts.shape}"
        )
    if pts.shape[0] == 0:
        return pts
    if np.any(~np.isfinite(pts)):
        raise ValueError("front contains non-finite values")
    return pts


def hypervolume_paper(
    points: np.ndarray,
    scale: Optional[Sequence[float]] = None,
) -> float:
    """Union volume of origin-anchored boxes (paper Section 4.2, lower = better).

    Parameters
    ----------
    points:
        ``(n, d)`` objective vectors (minimization, all components must be
        >= 0 — the origin is the ideal corner).
    scale:
        Optional per-objective divisor applied before the union (e.g.
        ``(1e-4, 1e-12)`` turns W and F into the paper's 0.1 mW and pF
        units).

    Returns
    -------
    float
        The union volume.  0.0 for an empty front.
    """
    pts = _clean_front(points)
    if pts.shape[0] == 0:
        return 0.0
    if scale is not None:
        scale_arr = np.asarray(scale, dtype=float)
        if scale_arr.shape != (pts.shape[1],):
            raise ValueError(
                f"scale must have {pts.shape[1]} entries, got {scale_arr.shape}"
            )
        if np.any(scale_arr <= 0):
            raise ValueError("scale entries must be positive")
        pts = pts / scale_arr
    if np.any(pts < 0):
        raise ValueError(
            "paper hypervolume requires non-negative objectives "
            "(boxes are anchored at the origin)"
        )
    # The union of origin-anchored boxes is determined by the maxima:
    # a box lies inside the union iff some point weakly dominates-from-above.
    # Equivalently this is the dominated volume of the *maximization* front,
    # so reuse the reference-point routine on negated points.
    return _dominated_volume_above_origin(pts)


def _dominated_volume_above_origin(pts: np.ndarray) -> float:
    """Volume of union of [0, p_i] boxes."""
    # Keep only points not covered by another box: p is redundant if some q
    # has q >= p in every coordinate.
    neg = -pts
    keep = pareto_mask(neg)
    pts = pts[keep]
    d = pts.shape[1]
    if d == 1:
        return float(pts.max())
    if d == 2:
        return _union_area_2d(pts)
    return _union_volume_recursive(pts)


def _union_area_2d(pts: np.ndarray) -> float:
    """Exact union area of origin-anchored rectangles in 2-D."""
    # Sort by x descending; after redundancy removal y increases as x falls.
    order = np.argsort(-pts[:, 0], kind="stable")
    sorted_pts = pts[order]
    area = 0.0
    prev_y = 0.0
    for x, y in sorted_pts:
        if y > prev_y:
            area += x * (y - prev_y)
            prev_y = y
    return float(area)


def _union_volume_recursive(pts: np.ndarray) -> float:
    """Union volume by slicing on the last coordinate (d >= 3)."""
    d = pts.shape[1]
    if d == 2:
        return _union_area_2d(pts)
    # Sweep the last coordinate from high to low; between consecutive
    # z-levels the cross-section is the union of boxes with z >= level.
    zs = np.unique(pts[:, -1])[::-1]
    volume = 0.0
    prev_z = 0.0
    # Process levels in increasing z so the active set shrinks; easier to
    # go decreasing: at level z, active points are those with z_i >= z.
    levels = np.concatenate([zs, [0.0]])
    for i, z in enumerate(zs):
        lower = levels[i + 1]
        active = pts[pts[:, -1] >= z][:, :-1]
        if active.size:
            neg = -active
            keep = pareto_mask(neg)
            cross = _union_volume_recursive(active[keep]) if d - 1 > 2 else (
                _union_area_2d(active[keep]) if d - 1 == 2 else float(active.max())
            )
            volume += cross * (z - lower)
    return float(volume)


def hypervolume_ref(
    points: np.ndarray,
    reference: Sequence[float],
) -> float:
    """Standard dominated hypervolume up to *reference* (higher = better).

    Points not strictly below the reference in every coordinate are
    discarded.  Exact for any dimension via the same union machinery
    applied to the transformed coordinates ``reference - p``.
    """
    pts = _clean_front(points)
    ref = np.asarray(reference, dtype=float)
    if pts.shape[0] == 0:
        return 0.0
    if ref.shape != (pts.shape[1],):
        raise ValueError(
            f"reference must have {pts.shape[1]} entries, got {ref.shape}"
        )
    mask = np.all(pts < ref, axis=1)
    pts = pts[mask]
    if pts.shape[0] == 0:
        return 0.0
    transformed = ref[None, :] - pts  # larger = better in every coordinate
    return _dominated_volume_above_origin(transformed)


def paper_unit_scale(power_unit: float = 1e-4, cap_unit: float = 1e-12) -> tuple:
    """The paper's reporting units: 0.1 mW for power, 1 pF for capacitance."""
    return (power_unit, cap_unit)
