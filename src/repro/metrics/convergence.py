"""Convergence metrics: generational distance family.

Used in tests and ablation benches to verify that the GA substrate
actually converges on problems with known analytic fronts.
"""

from __future__ import annotations

import numpy as np


def _pairwise_min_dist(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """For each row of *a*, Euclidean distance to the closest row of *b*."""
    a = np.atleast_2d(np.asarray(a, dtype=float))
    b = np.atleast_2d(np.asarray(b, dtype=float))
    if a.shape[0] == 0 or b.shape[0] == 0:
        raise ValueError("distance between empty point sets is undefined")
    if a.shape[1] != b.shape[1]:
        raise ValueError(
            f"dimension mismatch: {a.shape[1]} vs {b.shape[1]} objectives"
        )
    diff = a[:, None, :] - b[None, :, :]
    return np.sqrt(np.sum(diff**2, axis=2)).min(axis=1)


def generational_distance(front: np.ndarray, reference: np.ndarray, p: float = 2.0) -> float:
    """GD: mean p-norm distance from *front* members to the *reference* front.

    Lower is better; zero means the front lies on the reference set.
    """
    d = _pairwise_min_dist(front, reference)
    return float(np.mean(d**p) ** (1.0 / p))


def inverted_generational_distance(
    front: np.ndarray, reference: np.ndarray, p: float = 2.0
) -> float:
    """IGD: mean distance from reference points to the front.

    Sensitive to both convergence *and* coverage — a clustered front has
    high IGD even if every member is optimal, which makes IGD the right
    scalar for the paper's diversity claims on problems with known fronts.
    """
    d = _pairwise_min_dist(reference, front)
    return float(np.mean(d**p) ** (1.0 / p))


def epsilon_indicator(front: np.ndarray, reference: np.ndarray) -> float:
    """Additive epsilon: smallest shift making *front* weakly dominate *reference*."""
    f = np.atleast_2d(np.asarray(front, dtype=float))
    r = np.atleast_2d(np.asarray(reference, dtype=float))
    if f.shape[0] == 0 or r.shape[0] == 0:
        raise ValueError("epsilon indicator of empty sets is undefined")
    # For each reference point: the best (over front points) worst-coordinate gap.
    gaps = f[:, None, :] - r[None, :, :]  # (nf, nr, d)
    worst_per_pair = gaps.max(axis=2)  # (nf, nr)
    best_per_ref = worst_per_pair.min(axis=0)  # (nr,)
    return float(best_per_ref.max())
