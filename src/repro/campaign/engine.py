"""CampaignRunner: durable, resumable execution of robustness campaigns.

A campaign lives in a directory under the runner's root::

    <root>/<campaign-id>/
        manifest.json            declarative description (spec, shard plan,
                                 trace_id, source provenance)
        designs.json             the design batch (x, c_load, nominal power)
        shards/shard-0000.json   one atomic result file per shard
        report.json              the aggregated report (written exactly once)

Execution modes share every byte of evaluation and aggregation code:

* **inline** — :meth:`CampaignRunner.run_inline` evaluates the pending
  shards in-process through a chosen evaluation backend;
* **durable** — :meth:`CampaignRunner.submit_shards` enqueues one
  ``campaign_shard`` job per pending shard into the PR 8
  :class:`~repro.serve.store.JobStore`; ``repro workers`` processes (or
  in-server worker threads) claim and execute them.  All shard jobs
  share the campaign's ``trace_id``, so ``repro trace-view`` shows the
  whole fan-out as one tree.

Crash safety is file-level: a shard result is written atomically, so a
``kill -9`` mid-shard leaves nothing and the shard's lease eventually
expires and requeues it; a completed shard is never re-evaluated
(*shard-exact resume*).  Because pass bits are exact and JSON float
round-trips are lossless, the aggregated yields are byte-identical
however many times execution was interrupted, and identical between
inline and durable modes.
"""

from __future__ import annotations

import json
import os
import re
import time
import uuid
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.campaign.aggregate import aggregate_report, build_derated_surface
from repro.campaign.scenarios import (
    CampaignSpec,
    Scenario,
    expand_scenarios,
    plan_shards,
)
from repro.campaign.shards import (
    ShardResult,
    evaluate_shard,
    read_shard,
    write_shard,
)
from repro.obs.logging import get_logger
from repro.obs.registry import NULL_METRICS
from repro.obs.tracing import (
    NULL_TRACE_RECORDER,
    check_trace_id,
    mint_trace_id,
)

PathLike = Union[str, Path]

__all__ = ["CampaignRunner", "UnknownCampaign"]

#: Campaign ids become directory names; same discipline as surface names.
_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: Yield histogram buckets: deciles of the [0, 1] yield range.
YIELD_BUCKETS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


class UnknownCampaign(KeyError):
    """Raised when a campaign id has no manifest under the runner root."""


def _check_id(campaign_id: str) -> str:
    if not _ID_RE.match(campaign_id):
        raise ValueError(
            f"invalid campaign id {campaign_id!r} (want letters/digits/._- "
            "only, not starting with a dot, at most 64 chars)"
        )
    return campaign_id


def _write_json(path: Path, payload: Dict[str, Any]) -> None:
    """Atomic JSON write (temp + fsync + replace)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + f".tmp-{os.getpid()}")
    with tmp.open("w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


class CampaignRunner:
    """Create, execute, resume and aggregate robustness campaigns.

    Parameters
    ----------
    root:
        Directory holding one subdirectory per campaign (created on
        demand).  The service layer uses ``<data-dir>/campaigns``.
    surfaces:
        Optional :class:`~repro.serve.surfaces.SurfaceStore`; when set,
        :meth:`finalize` registers the derated surface there with
        provenance metadata in its ``.meta.json`` sidecar.
    metrics:
        Optional :class:`~repro.obs.registry.MetricsRegistry` receiving
        the campaign counters/histograms (shards done/failed, scenario
        throughput, shard latency, per-design yield distribution).
    recorder:
        Optional :class:`~repro.obs.tracing.TraceRecorder`; shard and
        finalize spans are tagged with the campaign's ``trace_id``.
    """

    def __init__(
        self,
        root: PathLike,
        surfaces=None,
        metrics=None,
        recorder=None,
    ) -> None:
        self.root = Path(root).absolute()
        self.root.mkdir(parents=True, exist_ok=True)
        self.surfaces = surfaces
        self.recorder = recorder if recorder is not None else NULL_TRACE_RECORDER
        metrics = NULL_METRICS if metrics is None else metrics
        self._log = get_logger("campaign.engine")
        self._m_created = metrics.counter(
            "repro_campaign_created_total", "Campaigns created"
        )
        self._m_shards = metrics.counter(
            "repro_campaign_shards_total",
            "Campaign shards processed, by outcome",
            labels=("state",),
        )
        self._m_scenarios = metrics.counter(
            "repro_campaign_scenarios_total",
            "Scenario evaluations completed across all campaigns",
        )
        self._m_shard_seconds = metrics.histogram(
            "repro_campaign_shard_seconds",
            "Wall time of one campaign shard evaluation",
        )
        self._m_yield = metrics.histogram(
            "repro_campaign_design_yield",
            "Per-design yield estimates at campaign finalize",
            buckets=YIELD_BUCKETS,
        )

    # ----------------------------------------------------------------- paths

    def campaign_dir(self, campaign_id: str) -> Path:
        return self.root / _check_id(campaign_id)

    def manifest_path(self, campaign_id: str) -> Path:
        return self.campaign_dir(campaign_id) / "manifest.json"

    def shard_path(self, campaign_id: str, shard_index: int) -> Path:
        return (
            self.campaign_dir(campaign_id)
            / "shards"
            / f"shard-{int(shard_index):04d}.json"
        )

    def report_path(self, campaign_id: str) -> Path:
        return self.campaign_dir(campaign_id) / "report.json"

    # ---------------------------------------------------------------- create

    def create(
        self,
        spec: CampaignSpec,
        x: np.ndarray,
        c_load: np.ndarray,
        nominal_power: np.ndarray,
        campaign_id: Optional[str] = None,
        trace_id: Optional[str] = None,
        source: Optional[Dict[str, Any]] = None,
        derated_surface: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Materialize a campaign directory; returns the manifest.

        *x* is the ``(n, 15)`` design batch, *c_load*/*nominal_power*
        the per-design load and nominal power (usually straight from a
        :class:`~repro.experiments.tradeoff.DesignSurface`).  *source*
        is free-form provenance recorded in the manifest and the derated
        surface's metadata sidecar.  Raises :class:`ValueError` if the
        campaign id already exists — campaigns are immutable once
        created; resume works by re-running the same id, not recreating
        it.
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        c_load = np.asarray(c_load, dtype=float).ravel()
        nominal_power = np.asarray(nominal_power, dtype=float).ravel()
        if not (x.shape[0] == c_load.size == nominal_power.size):
            raise ValueError(
                f"inconsistent design batch: x={x.shape[0]}, "
                f"c_load={c_load.size}, power={nominal_power.size}"
            )
        if x.shape[0] == 0:
            raise ValueError("a campaign needs at least one design")
        campaign_id = _check_id(
            campaign_id or f"campaign-{uuid.uuid4().hex[:12]}"
        )
        trace_id = (
            mint_trace_id() if trace_id is None else check_trace_id(trace_id)
        )
        directory = self.campaign_dir(campaign_id)
        if self.manifest_path(campaign_id).exists():
            raise ValueError(
                f"campaign {campaign_id!r} already exists under {self.root}"
            )
        scenarios = expand_scenarios(spec)
        shards = plan_shards(spec)
        directory.mkdir(parents=True, exist_ok=True)
        _write_json(
            directory / "designs.json",
            {
                "x": x.tolist(),
                "c_load": c_load.tolist(),
                "nominal_power": nominal_power.tolist(),
            },
        )
        manifest = {
            "id": campaign_id,
            "created": time.time(),
            "spec": spec.to_dict(),
            "source": source or {},
            "n_designs": int(x.shape[0]),
            "scenario_keys": [s.key for s in scenarios],
            "shards": shards,
            "trace_id": trace_id,
            "derated_surface": derated_surface,
        }
        # The manifest is written last: its presence is what makes the
        # campaign visible, so a crash mid-create leaves no half-campaign.
        _write_json(self.manifest_path(campaign_id), manifest)
        self._m_created.inc()
        self._log.info(
            "campaign created",
            campaign=campaign_id,
            trace_id=trace_id,
            n_designs=manifest["n_designs"],
            n_shards=len(shards),
        )
        return manifest

    def create_from_surface(
        self,
        store,
        name: str,
        spec: CampaignSpec,
        version: Optional[int] = None,
        **kwargs: Any,
    ) -> Dict[str, Any]:
        """Campaign over a registered surface's member designs."""
        surface, resolved = store._load_versioned(name, version)
        kwargs.setdefault(
            "source", {"kind": "surface", "surface": name, "version": resolved}
        )
        kwargs.setdefault("derated_surface", f"{name}-derated")
        return self.create(
            spec, surface.x, surface.c_load, surface.power, **kwargs
        )

    def create_from_result(
        self, result, spec: CampaignSpec, **kwargs: Any
    ) -> Dict[str, Any]:
        """Campaign over the feasible front of an OptimizationResult."""
        from repro.experiments.tradeoff import DesignSurface

        surface = DesignSurface.from_result(result)
        kwargs.setdefault(
            "source", {"kind": "result", "algorithm": result.algorithm}
        )
        return self.create(
            spec, surface.x, surface.c_load, surface.power, **kwargs
        )

    def create_from_checkpoint(
        self, checkpoint_path: PathLike, spec: CampaignSpec, **kwargs: Any
    ) -> Dict[str, Any]:
        """Campaign over the current feasible front of a checkpoint.

        Useful mid-run: "is the front robust so far?" without waiting
        for the optimization to finish.
        """
        from repro.core.checkpoint import load_checkpoint
        from repro.core.results import extract_feasible_front
        from repro.experiments.tradeoff import DesignSurface

        payload = load_checkpoint(checkpoint_path)
        state = payload["loop_state"]
        population = state.get("population")
        if population is None:
            population = getattr(state.get("parted"), "population", None)
        if population is None:
            raise ValueError(
                f"{checkpoint_path}: checkpoint holds no population to "
                "extract a front from"
            )
        front_x, front_f = extract_feasible_front(population)
        if front_x.shape[0] == 0:
            raise ValueError(
                f"{checkpoint_path}: checkpoint front has no feasible designs"
            )
        surface = DesignSurface(
            front_x, front_x[:, 14], front_f[:, 0]
        )
        kwargs.setdefault(
            "source",
            {
                "kind": "checkpoint",
                "path": str(checkpoint_path),
                "generation": int(payload.get("generation", -1)),
            },
        )
        return self.create(
            spec, surface.x, surface.c_load, surface.power, **kwargs
        )

    # ------------------------------------------------------------------ load

    def list_campaigns(self) -> List[Dict[str, Any]]:
        """Summaries of every campaign under the root (sorted by id)."""
        out = []
        for child in sorted(self.root.iterdir()):
            if child.is_dir() and (child / "manifest.json").exists():
                try:
                    out.append(self.status(self.load(child.name)))
                except (ValueError, KeyError, OSError):
                    continue
        return out

    def load(self, campaign_id: str) -> Dict[str, Any]:
        path = self.manifest_path(campaign_id)
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise UnknownCampaign(campaign_id) from None
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(f"cannot read campaign manifest {path}: {exc}")
        return manifest

    def spec_of(self, manifest: Dict[str, Any]) -> CampaignSpec:
        return CampaignSpec.from_dict(manifest["spec"])

    def scenarios_of(self, manifest: Dict[str, Any]) -> List[Scenario]:
        return expand_scenarios(self.spec_of(manifest))

    def designs(self, manifest: Dict[str, Any]):
        """The campaign's design batch: ``(x, c_load, nominal_power)``."""
        path = self.campaign_dir(manifest["id"]) / "designs.json"
        payload = json.loads(path.read_text(encoding="utf-8"))
        return (
            np.asarray(payload["x"], dtype=float),
            np.asarray(payload["c_load"], dtype=float),
            np.asarray(payload["nominal_power"], dtype=float),
        )

    # --------------------------------------------------------------- shards

    def pending_shards(self, manifest: Dict[str, Any]) -> List[int]:
        """Shard indices whose result file is missing or unreadable."""
        cid = manifest["id"]
        return [
            i
            for i in range(len(manifest["shards"]))
            if read_shard(self.shard_path(cid, i)) is None
        ]

    def run_shard(
        self,
        manifest: Dict[str, Any],
        shard_index: int,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> ShardResult:
        """Evaluate one shard, persisting its result atomically.

        Shard-exact resume: if the result file already exists (a prior
        attempt finished before dying, or another worker got here
        first), it is returned as-is and nothing is re-evaluated.
        """
        cid = manifest["id"]
        shard_index = int(shard_index)
        if not (0 <= shard_index < len(manifest["shards"])):
            raise ValueError(
                f"shard index {shard_index} out of range "
                f"(campaign has {len(manifest['shards'])} shards)"
            )
        path = self.shard_path(cid, shard_index)
        existing = read_shard(path)
        if existing is not None:
            self._m_shards.labels(state="skipped").inc()
            self._log.info(
                "shard already complete", campaign=cid, shard=shard_index
            )
            return existing
        spec = self.spec_of(manifest)
        scenarios = self.scenarios_of(manifest)
        indices = manifest["shards"][shard_index]
        shard_scenarios = [scenarios[i] for i in indices]
        x, _, _ = self.designs(manifest)
        started = time.perf_counter()
        try:
            with self.recorder.span(
                "campaign:shard",
                trace_id=manifest.get("trace_id"),
                campaign=cid,
                shard=shard_index,
            ):
                result = evaluate_shard(
                    spec,
                    shard_scenarios,
                    x,
                    shard_index=shard_index,
                    backend=backend,
                    workers=workers,
                )
        except Exception:
            self._m_shards.labels(state="failed").inc()
            raise
        write_shard(path, result)
        self._m_shards.labels(state="done").inc()
        self._m_scenarios.inc(len(shard_scenarios))
        self._m_shard_seconds.observe(time.perf_counter() - started)
        self._log.info(
            "shard complete",
            campaign=cid,
            shard=shard_index,
            scenarios=len(shard_scenarios),
        )
        return result

    def run_inline(
        self,
        manifest: Dict[str, Any],
        backend: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Run every pending shard in-process, then finalize."""
        for shard_index in range(len(manifest["shards"])):
            self.run_shard(
                manifest, shard_index, backend=backend, workers=workers
            )
        return self.finalize(manifest)

    # --------------------------------------------------------------- durable

    def submit_shards(
        self,
        manifest: Dict[str, Any],
        job_store,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        queue_bound: Optional[int] = None,
    ) -> List[Any]:
        """Enqueue one durable ``campaign_shard`` job per pending shard.

        Shards whose result file already exists are skipped (resume),
        as are shards with a live (queued/running) job in the store
        (idempotent re-submission).  Every job carries the campaign's
        ``trace_id``.  Returns the submitted job records.
        """
        from repro.serve.store import JobRecord

        cid = manifest["id"]
        active: set = set()
        for record in job_store.list_jobs(states=("queued", "running")):
            if (
                record.kind == "campaign_shard"
                and record.params.get("campaign_id") == cid
            ):
                active.add(int(record.params.get("shard_index", -1)))
        submitted = []
        for shard_index in self.pending_shards(manifest):
            if shard_index in active:
                continue
            params: Dict[str, Any] = {
                "campaign_id": cid,
                "campaign_root": str(self.root),
                "shard_index": shard_index,
            }
            if backend is not None:
                params["backend"] = backend
            if workers is not None:
                params["workers"] = workers
            record = JobRecord(
                id=f"job-{uuid.uuid4().hex[:12]}",
                kind="campaign_shard",
                params=params,
                trace_id=manifest.get("trace_id"),
            )
            job_store.submit(record, queue_bound=queue_bound)
            submitted.append(record)
        self._log.info(
            "campaign shards submitted",
            campaign=cid,
            n_jobs=len(submitted),
            trace_id=manifest.get("trace_id"),
        )
        return submitted

    # ---------------------------------------------------------------- status

    def status(self, manifest: Dict[str, Any]) -> Dict[str, Any]:
        cid = manifest["id"]
        n_shards = len(manifest["shards"])
        pending = self.pending_shards(manifest)
        return {
            "id": cid,
            "trace_id": manifest.get("trace_id"),
            "n_designs": manifest["n_designs"],
            "n_scenarios": len(manifest["scenario_keys"]),
            "n_shards": n_shards,
            "shards_done": n_shards - len(pending),
            "shards_pending": pending,
            "complete": not pending,
            "report_ready": self.report_path(cid).exists(),
            "derated_surface": manifest.get("derated_surface"),
            "source": manifest.get("source", {}),
        }

    # -------------------------------------------------------------- finalize

    def finalize(self, manifest: Dict[str, Any]) -> Dict[str, Any]:
        """Aggregate all shard results into the campaign report.

        Idempotent: the first finalize writes ``report.json`` with an
        exclusive create (``os.link``) and registers the derated
        surface; every later call — from any process — returns the
        stored report without re-registering anything.  Raises
        :class:`ValueError` while shards are still missing.
        """
        cid = manifest["id"]
        report_file = self.report_path(cid)
        if report_file.exists():
            return json.loads(report_file.read_text(encoding="utf-8"))
        pending = self.pending_shards(manifest)
        if pending:
            raise ValueError(
                f"campaign {cid!r} is incomplete: shards {pending} have no "
                "results yet"
            )
        shard_results = [
            read_shard(self.shard_path(cid, i))
            for i in range(len(manifest["shards"]))
        ]
        spec = self.spec_of(manifest)
        x, c_load, nominal_power = self.designs(manifest)
        with self.recorder.span(
            "campaign:finalize", trace_id=manifest.get("trace_id"), campaign=cid
        ):
            report = aggregate_report(
                shard_results,
                manifest["scenario_keys"],
                c_load,
                nominal_power,
                spec.n_mc,
                spec.yield_target,
            )
            report["campaign"] = cid
            report["trace_id"] = manifest.get("trace_id")
            report["spec"] = manifest["spec"]
            report["source"] = manifest.get("source", {})
            yields = np.array([d["yield"] for d in report["designs"]])
            derated_power = np.array(
                [d["derated_power"] for d in report["designs"]]
            )
            keep = yields >= spec.yield_target
            surface = build_derated_surface(x, c_load, derated_power, keep)
            report["derated_surface"] = self._register_derated(
                manifest, report, surface
            )
        for value in yields:
            self._m_yield.observe(float(value))
        # Exclusive create: exactly one finalizer publishes the report;
        # a concurrent loser adopts the winner's bytes.
        tmp = report_file.with_name(report_file.name + f".tmp-{os.getpid()}")
        with tmp.open("w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        try:
            os.link(tmp, report_file)
        except FileExistsError:
            return json.loads(report_file.read_text(encoding="utf-8"))
        finally:
            os.unlink(tmp)
        self._log.info(
            "campaign finalized",
            campaign=cid,
            n_yielding=report["n_yielding"],
            n_designs=report["n_designs"],
        )
        return report

    def _register_derated(
        self, manifest: Dict[str, Any], report: Dict[str, Any], surface
    ) -> Optional[Dict[str, Any]]:
        if surface is None:
            return {
                "registered": False,
                "reason": (
                    "no design met the yield target "
                    f"{report['yield_target']:g}"
                ),
            }
        name = manifest.get("derated_surface")
        if self.surfaces is None or not name:
            return {
                "registered": False,
                "reason": "no surface store attached",
                "size": surface.size,
            }
        version = self.surfaces.register(
            name,
            surface,
            metadata={
                "kind": "derated",
                "campaign": manifest["id"],
                "trace_id": manifest.get("trace_id"),
                "source": manifest.get("source", {}),
                "spec": manifest["spec"],
                "n_yielding": report["n_yielding"],
                "n_designs": report["n_designs"],
            },
        )
        return {
            "registered": True,
            "name": name,
            "version": version,
            "size": surface.size,
        }
