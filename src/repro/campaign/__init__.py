"""Campaign engine: corner x mismatch robustness sweeps over evolved fronts.

The paper's deliverable is a *nominal* power-vs-C_load design surface,
yet its constraints are meant to hold "across all manufacturing process
corners".  This subsystem closes that gap: it takes an evolved front (a
registered :class:`~repro.serve.surfaces.SurfaceStore` surface, an
:class:`~repro.core.results.OptimizationResult`, or a checkpoint) and
re-evaluates every member design over a declarative scenario grid —
technology corners x Monte-Carlo process/mismatch samples x operating
conditions — producing decision-support artifacts: per-design pass/fail
matrices, yield estimates with Wilson confidence intervals, worst-case
derating, and a **derated design surface** registered alongside the
nominal one.

Layers:

* :mod:`repro.campaign.scenarios` — the declarative grid
  (:class:`CampaignSpec`, :class:`OperatingCondition`) and its expansion
  into concrete :class:`Scenario` technology cards.
* :mod:`repro.campaign.shards` — scenario-batch evaluation as a
  :class:`~repro.problems.base.Problem` (so the existing
  serial/process/shm backends parallelize over designs) plus atomic
  shard-result files.
* :mod:`repro.campaign.aggregate` — reduction of shard results into the
  campaign report (yields, Wilson intervals, derating).
* :mod:`repro.campaign.engine` — :class:`CampaignRunner`: inline
  execution, durable execution via the PR 8 job store, shard-exact
  resume, and derated-surface registration.
"""

from repro.campaign.aggregate import aggregate_report, wilson_interval
from repro.campaign.engine import CampaignRunner, UnknownCampaign
from repro.campaign.scenarios import (
    CampaignSpec,
    OperatingCondition,
    Scenario,
    scenario_technology,
)
from repro.campaign.shards import CampaignShardProblem, ShardResult, evaluate_shard

__all__ = [
    "CampaignRunner",
    "CampaignShardProblem",
    "CampaignSpec",
    "OperatingCondition",
    "Scenario",
    "ShardResult",
    "UnknownCampaign",
    "aggregate_report",
    "evaluate_shard",
    "scenario_technology",
    "wilson_interval",
]
