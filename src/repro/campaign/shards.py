"""Shard evaluation: a scenario batch as a vectorized Problem.

A shard evaluates all campaign designs under a contiguous slice of the
scenario grid.  The evaluation is expressed as a
:class:`~repro.problems.base.Problem` so it inherits the batched
``evaluate_batch`` contract and rides the existing evaluation backends
(serial / thread / process / shm) for design-parallelism — the backends'
row-decomposability guarantee is exactly what makes chunked parallel
evaluation bit-identical to serial.

Within one scenario the ``stacked_technology`` trick packs all ``n_mc``
Monte-Carlo process samples into a single card, so one
``analyze_integrator`` call covers ``(samples x designs)``.  The per-
scenario result — worst-sample power plus one pass bit per (sample,
design) — is packed into the objective matrix as float columns::

    objectives[:, s*(1+m) + 0]      worst-sample power under scenario s
    objectives[:, s*(1+m) + 1+j]    pass bit of MC sample j (0.0 / 1.0)

Shard results are persisted as JSON files written atomically (temp +
``os.replace``), so a worker killed mid-write can never leave a torn
shard — the file either exists and is complete, or does not exist and
the shard re-runs deterministically.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.campaign.scenarios import CampaignSpec, Scenario, scenario_technology
from repro.circuits.integrator import analyze_integrator
from repro.circuits.sizing_problem import (
    _LOWER,
    _UPPER,
    IntegratorSizingProblem,
    PARAMETER_NAMES,
    spec_pass_matrix,
)
from repro.circuits.specs import IntegratorSpec, published_spec
from repro.circuits.technology import nominal_technology
from repro.circuits.yield_est import MonteCarloSampler
from repro.core.evaluation import make_backend
from repro.problems.base import Problem

PathLike = Union[str, Path]

__all__ = [
    "CampaignShardProblem",
    "ShardResult",
    "evaluate_shard",
    "read_shard",
    "write_shard",
]


class CampaignShardProblem(Problem):
    """Robustness evaluation of designs under a slice of the scenario grid.

    Objectives pack, per scenario, the worst-sample power followed by one
    pass bit per Monte-Carlo sample (see module docstring); there are no
    constraints.  The pass/fail semantics are
    :func:`~repro.circuits.sizing_problem.spec_pass_matrix` — the same
    predicate the sizing problem's robustness constraint uses.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        scenarios: Sequence[Scenario],
        integrator_spec: Optional[IntegratorSpec] = None,
    ) -> None:
        scenarios = list(scenarios)
        if not scenarios:
            raise ValueError("a shard needs at least one scenario")
        self.campaign_spec = spec
        self.scenarios = scenarios
        self.integrator_spec = integrator_spec or published_spec()
        super().__init__(
            n_var=len(PARAMETER_NAMES),
            n_obj=len(scenarios) * (1 + spec.n_mc),
            n_con=0,
            lower=_LOWER,
            upper=_UPPER,
            name=f"CampaignShard[{len(scenarios)}x{spec.n_mc}mc]",
        )
        self.sampler = MonteCarloSampler(
            n_samples=spec.n_mc,
            sigma_mu=spec.sigma_mu,
            sigma_vt=spec.sigma_vt,
            seed=spec.mc_seed,
        )
        base = nominal_technology()
        self._scenario_techs = [
            scenario_technology(s, base) for s in scenarios
        ]
        # One stacked (n_mc, 1) card per scenario: a single analysis call
        # then covers every (sample, design) pair of that scenario.
        self._stacked_techs = [
            self.sampler.stacked(tech) for tech in self._scenario_techs
        ]

    def _evaluate(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        p = IntegratorSizingProblem.decode(x)
        design = IntegratorSizingProblem._design_from_params(p)
        ispec = self.integrator_spec
        eps = ispec.se_max / 2.0
        cols: List[np.ndarray] = []
        n = np.atleast_2d(x).shape[0]
        for tech, stacked in zip(self._scenario_techs, self._stacked_techs):
            perf = analyze_integrator(stacked, design, settle_epsilon=eps)
            mismatch = self.sampler.mismatch_offsets(
                tech.nmos.a_vt, p["w1"], p["l1"]
            )
            passes = spec_pass_matrix(ispec, perf, offset_extra=mismatch)
            passes = np.broadcast_to(
                np.atleast_2d(passes), (self.campaign_spec.n_mc, n)
            )
            power = np.asarray(perf.power, dtype=float)
            if power.ndim > 1:
                power = power.max(axis=0)
            power = np.broadcast_to(power, (n,))
            cols.append(power)
            cols.extend(passes.astype(float))
        objectives = np.column_stack(cols)
        return objectives, np.zeros((n, 0))


def unpack_objectives(
    objectives: np.ndarray, n_scenarios: int, n_mc: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Split packed shard objectives into ``(power, passes)``.

    Returns ``power`` of shape ``(n_scenarios, n_designs)`` and boolean
    ``passes`` of shape ``(n_scenarios, n_mc, n_designs)``.
    """
    obj = np.atleast_2d(np.asarray(objectives, dtype=float))
    width = 1 + n_mc
    if obj.shape[1] != n_scenarios * width:
        raise ValueError(
            f"objective width {obj.shape[1]} does not match "
            f"{n_scenarios} scenarios x (1 + {n_mc}) columns"
        )
    power = np.empty((n_scenarios, obj.shape[0]))
    passes = np.empty((n_scenarios, n_mc, obj.shape[0]), dtype=bool)
    for s in range(n_scenarios):
        off = s * width
        power[s] = obj[:, off]
        passes[s] = obj[:, off + 1 : off + width].T > 0.5
    return power, passes


@dataclass
class ShardResult:
    """One shard's contribution to the campaign: pass bits and powers."""

    shard_index: int
    scenario_keys: List[str]
    n_mc: int
    #: (n_scenarios, n_designs) worst-sample power per scenario.
    power: np.ndarray
    #: (n_scenarios, n_mc, n_designs) boolean pass matrix.
    passes: np.ndarray
    n_evaluations: int = 0

    @property
    def n_designs(self) -> int:
        return int(self.power.shape[1])

    def to_dict(self) -> Dict[str, Any]:
        return {
            "shard_index": int(self.shard_index),
            "scenario_keys": list(self.scenario_keys),
            "n_mc": int(self.n_mc),
            "power": self.power.tolist(),
            "passes": self.passes.astype(int).tolist(),
            "n_evaluations": int(self.n_evaluations),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ShardResult":
        power = np.asarray(payload["power"], dtype=float)
        passes = np.asarray(payload["passes"], dtype=int).astype(bool)
        if power.ndim != 2 or passes.ndim != 3:
            raise ValueError(
                f"malformed shard payload: power ndim {power.ndim}, "
                f"passes ndim {passes.ndim}"
            )
        return cls(
            shard_index=int(payload["shard_index"]),
            scenario_keys=[str(k) for k in payload["scenario_keys"]],
            n_mc=int(payload["n_mc"]),
            power=power,
            passes=passes,
            n_evaluations=int(payload.get("n_evaluations", 0)),
        )


def evaluate_shard(
    spec: CampaignSpec,
    scenarios: Sequence[Scenario],
    x: np.ndarray,
    shard_index: int = 0,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    integrator_spec: Optional[IntegratorSpec] = None,
) -> ShardResult:
    """Evaluate one shard of the campaign over the design batch *x*.

    *backend*/*workers* select the evaluation backend
    (``serial``/``thread``/``process``/``shm``); all are bit-identical
    by the backend-equivalence contract, so the choice is purely a speed
    knob and never affects the aggregated yields.
    """
    problem = CampaignShardProblem(
        spec, scenarios, integrator_spec=integrator_spec
    )
    eval_backend = make_backend(backend, workers=workers)
    try:
        evaluation = eval_backend.evaluate(problem, np.atleast_2d(x))
    finally:
        eval_backend.close()
    power, passes = unpack_objectives(
        evaluation.objectives, len(problem.scenarios), spec.n_mc
    )
    return ShardResult(
        shard_index=int(shard_index),
        scenario_keys=[s.key for s in problem.scenarios],
        n_mc=spec.n_mc,
        power=power,
        passes=passes,
        n_evaluations=evaluation.objectives.shape[0] * len(problem.scenarios),
    )


# -------------------------------------------------------------- shard files


def write_shard(path: PathLike, result: ShardResult) -> Path:
    """Atomically persist a shard result (write temp, fsync, replace).

    ``kill -9`` mid-write leaves at most a stale temp file — the shard
    path itself either holds a complete payload or nothing, which is the
    invariant shard-exact resume relies on.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + f".tmp-{os.getpid()}")
    with tmp.open("w", encoding="utf-8") as fh:
        json.dump(result.to_dict(), fh, indent=2)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


def read_shard(path: PathLike) -> Optional[ShardResult]:
    """Load a shard result; ``None`` when absent or unreadable.

    A corrupt file (impossible through :func:`write_shard`, but a disk
    can always betray you) counts as missing so the shard simply
    re-runs.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        return ShardResult.from_dict(payload)
    except (OSError, ValueError, KeyError):
        return None
