"""The declarative scenario grid a campaign sweeps.

A campaign re-evaluates a set of designs under *scenarios*.  One
scenario is a (process corner, operating condition) pair; within each
scenario the design is additionally subjected to the campaign's
Monte-Carlo process/mismatch sample set (common random numbers — every
scenario, shard and worker sees the *same* disturbance draws, which is
what makes per-sample AND-aggregation across scenarios meaningful).

The grid is declared as a :class:`CampaignSpec` and expanded in a fixed,
deterministic order (corners outer, conditions inner) so shard plans are
reproducible from the manifest alone.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Any, Dict, List, Sequence, Tuple

from repro.circuits.technology import (
    CORNERS,
    ROOM_TEMPERATURE,
    Technology,
    corner_technology,
    nominal_technology,
)

__all__ = [
    "CampaignSpec",
    "NOMINAL_CONDITION",
    "OperatingCondition",
    "Scenario",
    "expand_scenarios",
    "plan_shards",
    "scenario_technology",
]


@dataclass(frozen=True)
class OperatingCondition:
    """A supply/temperature operating point (derating hook).

    ``vdd_scale`` multiplies the technology card's nominal supply
    (e.g. 1.05 for a +5 % supply corner — power scales with it) and
    ``temperature`` replaces the card's temperature (kT drives the
    noise floor and thereby dynamic range).
    """

    name: str = "nom"
    vdd_scale: float = 1.0
    temperature: float = ROOM_TEMPERATURE

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("operating condition needs a non-empty name")
        if not (0.0 < self.vdd_scale < 10.0):
            raise ValueError(
                f"vdd_scale must be in (0, 10), got {self.vdd_scale}"
            )
        if self.temperature <= 0.0:
            raise ValueError(
                f"temperature must be > 0 K, got {self.temperature}"
            )


NOMINAL_CONDITION = OperatingCondition()


@dataclass(frozen=True)
class Scenario:
    """One concrete grid point: a corner under an operating condition."""

    corner: str
    condition: OperatingCondition

    @property
    def key(self) -> str:
        """Stable identifier used in shard files and reports."""
        return f"{self.corner}@{self.condition.name}"


def scenario_technology(scenario: Scenario, base: Technology = None) -> Technology:
    """The technology card a scenario evaluates under."""
    if base is None:
        base = nominal_technology()
    tech = corner_technology(scenario.corner, base)
    cond = scenario.condition
    return replace(
        tech,
        name=f"{tech.name}@{cond.name}",
        vdd=base.vdd * cond.vdd_scale,
        temperature=cond.temperature,
    )


@dataclass(frozen=True)
class CampaignSpec:
    """Declarative description of a robustness campaign.

    The scenario grid is ``corners x conditions``; each scenario is
    evaluated at ``n_mc`` Monte-Carlo process/mismatch samples drawn
    with common random numbers from ``mc_seed``.  ``yield_target``
    filters the derated surface: a design survives only if the fraction
    of MC samples passing spec in *every* scenario is at least the
    target.  ``shard_scenarios`` bounds how many scenarios one shard
    evaluates (the unit of durable/parallel execution).
    """

    corners: Tuple[str, ...] = CORNERS
    n_mc: int = 8
    mc_seed: int = 2005
    sigma_mu: float = 0.05
    sigma_vt: float = 0.015
    conditions: Tuple[OperatingCondition, ...] = (NOMINAL_CONDITION,)
    yield_target: float = 0.9
    shard_scenarios: int = 2

    def __post_init__(self) -> None:
        corners = tuple(str(c).upper() for c in self.corners)
        if not corners:
            raise ValueError("campaign needs at least one corner")
        unknown = [c for c in corners if c not in CORNERS]
        if unknown:
            raise ValueError(
                f"unknown corners {unknown}; known: {list(CORNERS)}"
            )
        if len(set(corners)) != len(corners):
            raise ValueError(f"duplicate corners in {corners}")
        object.__setattr__(self, "corners", corners)
        conditions = tuple(self.conditions)
        if not conditions:
            raise ValueError("campaign needs at least one operating condition")
        names = [c.name for c in conditions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate operating-condition names in {names}")
        object.__setattr__(self, "conditions", conditions)
        if self.n_mc < 1:
            raise ValueError(f"n_mc must be >= 1, got {self.n_mc}")
        if not (0.0 <= self.yield_target <= 1.0):
            raise ValueError(
                f"yield_target must be in [0, 1], got {self.yield_target}"
            )
        if self.shard_scenarios < 1:
            raise ValueError(
                f"shard_scenarios must be >= 1, got {self.shard_scenarios}"
            )

    # ---------------------------------------------------------------- io

    def to_dict(self) -> Dict[str, Any]:
        out = asdict(self)
        out["corners"] = list(self.corners)
        out["conditions"] = [asdict(c) for c in self.conditions]
        return out

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CampaignSpec":
        payload = dict(payload or {})
        unknown = sorted(set(payload) - set(cls.__dataclass_fields__))
        if unknown:
            raise ValueError(
                f"unknown campaign spec fields {unknown} "
                f"(allowed: {sorted(cls.__dataclass_fields__)})"
            )
        kwargs: Dict[str, Any] = {}
        if "corners" in payload:
            kwargs["corners"] = tuple(payload["corners"])
        if "conditions" in payload:
            conditions = []
            for item in payload["conditions"]:
                if isinstance(item, OperatingCondition):
                    conditions.append(item)
                else:
                    conditions.append(OperatingCondition(**item))
            kwargs["conditions"] = tuple(conditions)
        for key in (
            "n_mc", "mc_seed", "shard_scenarios",
        ):
            if key in payload:
                kwargs[key] = int(payload[key])
        for key in ("sigma_mu", "sigma_vt", "yield_target"):
            if key in payload:
                kwargs[key] = float(payload[key])
        return cls(**kwargs)


def expand_scenarios(spec: CampaignSpec) -> List[Scenario]:
    """The grid in its canonical order (corners outer, conditions inner)."""
    return [
        Scenario(corner=corner, condition=condition)
        for corner in spec.corners
        for condition in spec.conditions
    ]


def plan_shards(spec: CampaignSpec) -> List[List[int]]:
    """Scenario indices per shard (contiguous chunks of the grid)."""
    n = len(spec.corners) * len(spec.conditions)
    size = spec.shard_scenarios
    return [list(range(i, min(i + size, n))) for i in range(0, n, size)]
