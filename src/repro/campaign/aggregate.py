"""Reduce shard results into the campaign's decision-support report.

Aggregation semantics (locked in by ``tests/campaign``):

* The **pass tensor** is the concatenation of all shard pass matrices in
  scenario-grid order: shape ``(n_scenarios, n_mc, n_designs)``.
* A design's **yield** is the fraction of Monte-Carlo samples that pass
  spec in *every* scenario — an AND across the scenario axis *per
  sample*, which the common-random-number contract makes meaningful
  (sample *j* is the same process draw in every scenario, shard and
  worker process).
* Yield confidence bounds are **Wilson score intervals** (z = 1.96).
* The **derated power** of a design is the maximum over scenarios of its
  worst-sample power, floored at its nominal power — derating never
  reports a better figure than the nominal surface.
* The **derated surface** keeps the designs with yield >= target, priced
  at derated power; it may be empty (all designs fail the target), in
  which case no surface is registered and the report says so.

Everything here is pure float/bool arithmetic on JSON round-trip-exact
values: pass bits are integers and Python's ``repr``-based JSON float
serialization is lossless, so the aggregated report is byte-identical
whether the shards ran serially in-process or across durable workers
with kills and resumes in between.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.campaign.shards import ShardResult
from repro.experiments.tradeoff import DesignSurface

__all__ = ["aggregate_report", "build_derated_surface", "wilson_interval"]

#: z-score of the 95 % two-sided normal interval.
WILSON_Z = 1.96


def wilson_interval(
    successes, trials: int, z: float = WILSON_Z
) -> Tuple[np.ndarray, np.ndarray]:
    """Wilson score interval for a binomial proportion (vectorized).

    Returns ``(lower, upper)`` arrays clipped to [0, 1].  Unlike the
    normal approximation, the Wilson interval stays sane at p = 0 / 1
    and small n — exactly the regime of an 8-sample yield estimate.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    k = np.asarray(successes, dtype=float)
    n = float(trials)
    p = k / n
    z2 = z * z
    denom = 1.0 + z2 / n
    centre = (p + z2 / (2.0 * n)) / denom
    half = (z / denom) * np.sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n))
    return np.clip(centre - half, 0.0, 1.0), np.clip(centre + half, 0.0, 1.0)


def _assemble(
    shard_results: Sequence[ShardResult],
    scenario_keys: Sequence[str],
    n_designs: int,
    n_mc: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Stitch shard results into full (power, passes) tensors.

    Validates that the shards jointly cover the scenario grid exactly
    once and agree on the design count and MC depth — a mismatch means
    the shard files belong to a different manifest.
    """
    seen: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    for result in shard_results:
        if result.n_mc != n_mc:
            raise ValueError(
                f"shard {result.shard_index} has n_mc={result.n_mc}, "
                f"campaign expects {n_mc}"
            )
        if result.n_designs != n_designs:
            raise ValueError(
                f"shard {result.shard_index} evaluated {result.n_designs} "
                f"designs, campaign expects {n_designs}"
            )
        for i, key in enumerate(result.scenario_keys):
            if key in seen:
                raise ValueError(f"scenario {key!r} appears in two shards")
            seen[key] = (result.power[i], result.passes[i])
    missing = [k for k in scenario_keys if k not in seen]
    if missing:
        raise ValueError(f"missing scenarios {missing} — campaign incomplete")
    extra = sorted(set(seen) - set(scenario_keys))
    if extra:
        raise ValueError(f"unexpected scenarios {extra} in shard results")
    power = np.stack([seen[k][0] for k in scenario_keys])
    passes = np.stack([seen[k][1] for k in scenario_keys])
    return power, passes


def build_derated_surface(
    x: np.ndarray,
    c_load: np.ndarray,
    derated_power: np.ndarray,
    keep: np.ndarray,
) -> Optional[DesignSurface]:
    """The derated surface, or ``None`` when no design survives.

    ``DesignSurface`` itself (correctly) refuses an empty design set, so
    the all-fail case is handled here and reported instead of raised.
    """
    if not np.any(keep):
        return None
    return DesignSurface(
        np.atleast_2d(x)[keep], c_load[keep], derated_power[keep]
    )


def aggregate_report(
    shard_results: Sequence[ShardResult],
    scenario_keys: Sequence[str],
    c_load: np.ndarray,
    nominal_power: np.ndarray,
    n_mc: int,
    yield_target: float,
) -> Dict[str, Any]:
    """The campaign report: yields, Wilson bounds, derating, pass rates.

    Deterministic given the shard results (no timestamps, no float
    operations whose result depends on shard arrival order — scenarios
    are reduced in grid order regardless of which worker produced them).
    """
    c_load = np.asarray(c_load, dtype=float).ravel()
    nominal_power = np.asarray(nominal_power, dtype=float).ravel()
    n_designs = c_load.size
    power, passes = _assemble(shard_results, scenario_keys, n_designs, n_mc)

    # Yield: per MC sample, a design must pass in EVERY scenario.
    all_pass = passes.all(axis=0)  # (n_mc, n_designs)
    successes = all_pass.sum(axis=0)  # (n_designs,)
    yields = successes / float(n_mc)
    lo, hi = wilson_interval(successes, n_mc)

    # Derating: worst scenario power, never better than nominal.
    worst_power = np.maximum(power.max(axis=0), nominal_power)
    worst_scenario = [
        scenario_keys[int(i)] for i in np.argmax(power, axis=0)
    ]
    keep = yields >= float(yield_target)

    scenario_pass_rate = {
        key: passes[s].mean(axis=0).tolist()
        for s, key in enumerate(scenario_keys)
    }
    designs: List[Dict[str, Any]] = []
    for i in range(n_designs):
        designs.append(
            {
                "index": i,
                "c_load": float(c_load[i]),
                "nominal_power": float(nominal_power[i]),
                "derated_power": float(worst_power[i]),
                "worst_scenario": worst_scenario[i],
                "yield": float(yields[i]),
                "yield_lo": float(lo[i]),
                "yield_hi": float(hi[i]),
                "passes_target": bool(keep[i]),
            }
        )
    n_evaluations = int(sum(r.n_evaluations for r in shard_results))
    return {
        "n_designs": int(n_designs),
        "n_scenarios": len(scenario_keys),
        "n_mc": int(n_mc),
        "n_shards": len(shard_results),
        "n_evaluations": n_evaluations,
        "yield_target": float(yield_target),
        "n_yielding": int(keep.sum()),
        "min_yield": float(yields.min()) if n_designs else 0.0,
        "median_yield": float(np.median(yields)) if n_designs else 0.0,
        "scenario_pass_rate": scenario_pass_rate,
        "designs": designs,
    }


def yield_histogram_counts(
    yields: Sequence[float], edges: Sequence[float]
) -> List[int]:
    """Cumulative counts of yields <= each edge (Prometheus-style)."""
    arr = np.asarray(list(yields), dtype=float)
    return [int(np.sum(arr <= e)) for e in edges]
