"""Plain-text reporting: aligned tables and ASCII series.

The benchmark harness prints the same rows/series the paper's figures
show; these helpers keep that output readable and uniform.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 4,
) -> str:
    """Monospace table with right-aligned numeric columns."""
    def fmt(cell: object) -> str:
        if isinstance(cell, (float, np.floating)):
            return f"{cell:.{precision}g}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def ascii_series(
    x: np.ndarray,
    y: np.ndarray,
    width: int = 60,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
    marker: str = "*",
) -> str:
    """Minimal scatter rendering of one series in a character grid."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.size == 0:
        return "(empty series)"
    if x.size != y.size:
        raise ValueError("x and y must have equal length")
    x_lo, x_hi = float(x.min()), float(x.max())
    y_lo, y_hi = float(y.min()), float(y.max())
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0
    grid = [[" "] * width for _ in range(height)]
    for xi, yi in zip(x, y):
        col = int((xi - x_lo) / x_span * (width - 1))
        row = height - 1 - int((yi - y_lo) / y_span * (height - 1))
        grid[row][col] = marker
    lines = [f"{y_label}: {y_lo:.4g} .. {y_hi:.4g}"]
    lines += ["|" + "".join(r) for r in grid]
    lines.append("+" + "-" * width)
    lines.append(f"{x_label}: {x_lo:.4g} .. {x_hi:.4g}")
    return "\n".join(lines)


def overlay_series(
    series: Sequence[tuple],
    width: int = 64,
    height: int = 18,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Overlay several ``(name, x, y, marker)`` series on one grid."""
    if not series:
        return "(no series)"
    xs_list = [np.asarray(s[1], float) for s in series if np.size(s[1])]
    ys_list = [np.asarray(s[2], float) for s in series if np.size(s[2])]
    if not xs_list:
        return "(all series empty)"
    xs = np.concatenate(xs_list)
    ys = np.concatenate(ys_list)
    x_lo, x_hi = float(xs.min()), float(xs.max())
    y_lo, y_hi = float(ys.min()), float(ys.max())
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0
    grid = [[" "] * width for _ in range(height)]
    for name, x, y, marker in series:
        for xi, yi in zip(np.asarray(x, float), np.asarray(y, float)):
            col = int((xi - x_lo) / x_span * (width - 1))
            row = height - 1 - int((yi - y_lo) / y_span * (height - 1))
            grid[row][col] = marker
    legend = "   ".join(f"{s[3]} = {s[0]}" for s in series)
    lines = [legend, f"{y_label}: {y_lo:.4g} .. {y_hi:.4g}"]
    lines += ["|" + "".join(r) for r in grid]
    lines.append("+" + "-" * width)
    lines.append(f"{x_label}: {x_lo:.4g} .. {x_hi:.4g}")
    return "\n".join(lines)


def front_rows(
    front: np.ndarray,
    c_load_max: float = 5.0e-12,
    max_rows: Optional[int] = 20,
) -> List[List[float]]:
    """Rows ``[c_load_pF, power_mW]`` from a (power, deficit) front."""
    f = np.atleast_2d(np.asarray(front, dtype=float))
    if f.shape[0] == 0:
        return []
    c_load = (c_load_max - f[:, 1]) * 1e12
    power = f[:, 0] * 1e3
    order = np.argsort(c_load)
    rows = [[float(c_load[i]), float(power[i])] for i in order]
    if max_rows is not None and len(rows) > max_rows:
        step = len(rows) / max_rows
        rows = [rows[int(i * step)] for i in range(max_rows)]
    return rows
