"""Convergence-curve analysis over recorded run histories.

Every optimizer records per-generation :class:`GenerationRecord`
snapshots; these helpers turn them into the curves the paper's
discussion reasons about — hypervolume over time, feasibility ramp-up,
coverage growth — and extract milestone generations ("when did coverage
first reach 0.8?").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.results import GenerationRecord, OptimizationResult
from repro.metrics.diversity import range_coverage
from repro.metrics.hypervolume import hypervolume_paper, hypervolume_ref


@dataclass(frozen=True)
class ConvergenceCurve:
    """A metric evaluated at every recorded generation."""

    generations: np.ndarray
    values: np.ndarray
    metric: str

    def __post_init__(self) -> None:
        if self.generations.shape != self.values.shape:
            raise ValueError("generations/values length mismatch")

    @property
    def final(self) -> float:
        if self.values.size == 0:
            raise ValueError("empty curve")
        return float(self.values[-1])

    def first_generation_reaching(
        self, threshold: float, direction: str = "above"
    ) -> Optional[int]:
        """Earliest recorded generation where the metric crosses *threshold*.

        ``direction`` is ``"above"`` (value >= threshold) or ``"below"``.
        Returns ``None`` if never reached.
        """
        if direction not in ("above", "below"):
            raise ValueError("direction must be 'above' or 'below'")
        if direction == "above":
            hits = np.flatnonzero(self.values >= threshold)
        else:
            hits = np.flatnonzero(self.values <= threshold)
        if hits.size == 0:
            return None
        return int(self.generations[hits[0]])

    def improvement_over(self, window: int) -> float:
        """Metric change over the final *window* recorded points."""
        if window < 1 or window >= self.values.size:
            raise ValueError(
                f"window must be in [1, {self.values.size - 1}], got {window}"
            )
        return float(self.values[-1] - self.values[-1 - window])


FrontMetric = Callable[[np.ndarray], float]


def curve_from_history(
    history: Sequence[GenerationRecord],
    metric_fn: FrontMetric,
    metric_name: str,
    skip_empty: bool = True,
) -> ConvergenceCurve:
    """Apply *metric_fn* to each recorded front."""
    gens: List[int] = []
    values: List[float] = []
    for rec in history:
        if rec.front_objectives.size == 0:
            if skip_empty:
                continue
            values.append(float("nan"))
        else:
            values.append(float(metric_fn(rec.front_objectives)))
        gens.append(rec.generation)
    return ConvergenceCurve(
        generations=np.asarray(gens, dtype=float),
        values=np.asarray(values, dtype=float),
        metric=metric_name,
    )


def hv_paper_curve(
    result: OptimizationResult,
    scale=(1.0e-4, 1.0e-12),
) -> ConvergenceCurve:
    """Paper-hypervolume (lower = better) over the recorded generations."""
    return curve_from_history(
        result.history,
        lambda front: hypervolume_paper(front, scale=scale),
        "hv_paper",
    )


def hv_ref_curve(
    result: OptimizationResult,
    reference=(2.0e-3, 5.0e-12),
) -> ConvergenceCurve:
    """Reference hypervolume (higher = better) over the run."""
    return curve_from_history(
        result.history,
        lambda front: hypervolume_ref(front, reference),
        "hv_ref",
    )


def coverage_curve(
    result: OptimizationResult,
    axis: int = 1,
    low: float = 0.0,
    high: float = 5.0e-12,
) -> ConvergenceCurve:
    """Load-range coverage over the run."""
    return curve_from_history(
        result.history,
        lambda front: range_coverage(front, axis=axis, low=low, high=high),
        "coverage",
    )


def feasibility_curve(result: OptimizationResult) -> ConvergenceCurve:
    """Feasible-member count over the run (works with empty fronts)."""
    gens = np.asarray([rec.generation for rec in result.history], dtype=float)
    values = np.asarray([rec.n_feasible for rec in result.history], dtype=float)
    return ConvergenceCurve(generations=gens, values=values, metric="n_feasible")


def first_feasible_generation(result: OptimizationResult) -> Optional[int]:
    """Generation at which the population first contained a feasible member."""
    curve = feasibility_curve(result)
    return curve.first_generation_reaching(1.0, direction="above")
