"""Experiment driver: configure, run, and score the three algorithms.

This module is the single place benchmarks and examples go through to
run NSGA-II (the paper's "TPG"), SACGA and MESACGA on the integrator
sizing problem — so that scale (population, generations, Monte-Carlo
depth) is controlled uniformly.

Scale: the paper runs 800-1250 generations with circuit evaluation; the
benchmark default is a reduced scale that preserves every qualitative
relationship while finishing in seconds.  Set the environment variable
``REPRO_FULL=1`` (or pass ``Scale.full()``) to reproduce at paper scale.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.circuits.sizing_problem import C_LOAD_MAX, IntegratorSizingProblem
from repro.circuits.specs import IntegratorSpec
from repro.core.evaluation import EvaluationBackend, make_backend
from repro.core.mesacga import MESACGA, PAPER_SCHEDULE
from repro.core.nsga2 import NSGA2
from repro.core.results import OptimizationResult
from repro.core.sacga import SACGA, SACGAConfig
from repro.metrics.hypervolume import hypervolume_paper
from repro.metrics.diversity import range_coverage, cluster_fraction
from repro.utils.rng import stable_seed

#: Scale objective values into the paper's reporting units
#: (0.1 mW for power, 1 pF for the load-capacitance deficit).
PAPER_HV_SCALE = (1.0e-4, 1.0e-12)


@dataclass(frozen=True)
class Scale:
    """Experiment size knobs shared by all benchmarks.

    ``generations`` here corresponds to the paper's canonical 800-
    iteration runs; individual experiments derive their own budgets from
    it (e.g. Fig 6 uses ``1.5x``).  At the reduced scale the MESACGA
    partition schedule is shrunk proportionally (see
    :func:`default_partition_schedule`), because 20 partitions over a
    sub-100 population leave fewer than 5 members per slice.
    """

    population: int = 80
    generations: int = 200
    n_mc: int = 6
    n_seeds: int = 1
    label: str = "reduced"

    @classmethod
    def full(cls) -> "Scale":
        return cls(population=200, generations=800, n_mc=12, n_seeds=3, label="full")

    @classmethod
    def from_env(cls) -> "Scale":
        if os.environ.get("REPRO_FULL", "").strip() in ("1", "true", "yes"):
            return cls.full()
        return cls()

    def scaled_generations(self, factor: float) -> int:
        """An iteration budget proportional to the canonical 800-iteration run."""
        return max(10, int(round(self.generations * factor)))


def make_problem(
    spec: Optional[IntegratorSpec] = None,
    scale: Optional[Scale] = None,
) -> IntegratorSizingProblem:
    """The sizing problem at the given scale's Monte-Carlo depth."""
    scale = scale or Scale.from_env()
    return IntegratorSizingProblem(spec=spec, n_mc=scale.n_mc)


def default_phase1_cap(generations: int) -> int:
    """Pure-local Phase-I budget scaled like the paper's 200-of-1250."""
    return max(10, generations // 5)


def default_partition_schedule(scale: Scale) -> Sequence[int]:
    """MESACGA schedule: the paper's at full scale, shrunk when reduced."""
    if scale.population >= 150:
        return PAPER_SCHEDULE
    return (10, 6, 4, 2, 1)


def make_algorithm(
    name: str,
    problem: IntegratorSizingProblem,
    scale: Scale,
    seed: int,
    n_partitions: int = 8,
    partition_schedule: Optional[Sequence[int]] = None,
    config: Optional[SACGAConfig] = None,
    generations: Optional[int] = None,
    backend: Optional[EvaluationBackend] = None,
    kernel: Optional[str] = None,
):
    """Factory for the three compared algorithms.

    *name* is one of ``"tpg"`` (NSGA-II, the paper's Traditional Purely
    Global baseline), ``"sacga"`` or ``"mesacga"``.  When *config* is not
    given, the Phase-I cap is derived from the generation budget so that
    reduced-scale runs keep the paper's phase proportions.  *backend*
    (an :class:`repro.core.evaluation.EvaluationBackend`) selects how
    fitness batches are evaluated; ``None`` keeps the serial default.
    *kernel* selects the dominance/selection kernel
    (``"blocked"``/``"reference"``; both are bit-identical in output).
    """
    key = name.strip().lower()
    gens = generations if generations is not None else scale.generations
    if config is None:
        config = SACGAConfig(phase1_max_iterations=default_phase1_cap(gens))
    if key in ("tpg", "nsga2", "nsga-ii"):
        return NSGA2(
            problem,
            population_size=scale.population,
            seed=seed,
            backend=backend,
            kernel=kernel,
        )
    if key == "sacga":
        grid = problem.partition_grid(n_partitions)
        return SACGA(
            problem,
            grid,
            population_size=scale.population,
            seed=seed,
            config=config,
            backend=backend,
            kernel=kernel,
        )
    if key == "mesacga":
        return MESACGA(
            problem,
            axis=1,
            low=0.0,
            high=C_LOAD_MAX,
            partition_schedule=partition_schedule or default_partition_schedule(scale),
            population_size=scale.population,
            seed=seed,
            config=config,
            backend=backend,
            kernel=kernel,
        )
    raise KeyError(f"unknown algorithm {name!r} (want tpg / sacga / mesacga)")


@dataclass
class RunSummary:
    """Scores of one optimizer run on the sizing problem."""

    algorithm: str
    seed: int
    hv_paper: float
    coverage: float
    cluster_4_5pF: float
    front_size: int
    wall_time: float
    n_evaluations: int
    result: OptimizationResult = field(repr=False, default=None)  # type: ignore[assignment]


def score_front(front: np.ndarray) -> Dict[str, float]:
    """Paper-HV (0.1 mW x pF units), range coverage, and cluster fraction."""
    if front.shape[0] == 0:
        return {"hv_paper": float("inf"), "coverage": 0.0, "cluster_4_5pF": 0.0}
    return {
        "hv_paper": hypervolume_paper(front, scale=PAPER_HV_SCALE),
        "coverage": range_coverage(front, axis=1, low=0.0, high=C_LOAD_MAX),
        "cluster_4_5pF": cluster_fraction(front, axis=1, low=0.0, high=1.0e-12),
    }


def run_one(
    name: str,
    experiment_id: str,
    scale: Optional[Scale] = None,
    generations: Optional[int] = None,
    spec: Optional[IntegratorSpec] = None,
    seed_index: int = 0,
    problem: Optional[IntegratorSizingProblem] = None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    cache_size: Optional[int] = None,
    kernel: Optional[str] = None,
    **algo_kwargs,
) -> RunSummary:
    """Run one algorithm once and score its front.

    Seeds are derived deterministically from ``(experiment_id, name,
    seed_index)`` so benchmarks are reproducible run to run.  *backend*
    (``"serial"`` / ``"thread"`` / ``"process"``), *workers* and
    *cache_size* configure the evaluation backend; the pool is shut down
    once the run finishes.  *kernel* picks the dominance/selection
    kernel (``"blocked"``/``"reference"``) — a pure speed knob.
    """
    scale = scale or Scale.from_env()
    problem = problem or make_problem(spec, scale)
    seed = stable_seed(experiment_id, name, seed_index)
    gens = generations if generations is not None else scale.generations
    eval_backend = make_backend(backend, workers=workers, cache_size=cache_size)
    algorithm = make_algorithm(
        name, problem, scale, seed, generations=gens, backend=eval_backend,
        kernel=kernel, **algo_kwargs,
    )
    try:
        result = algorithm.run(gens)
    finally:
        eval_backend.close()
    scores = score_front(result.front_objectives)
    return RunSummary(
        algorithm=result.algorithm,
        seed=seed,
        hv_paper=scores["hv_paper"],
        coverage=scores["coverage"],
        cluster_4_5pF=scores["cluster_4_5pF"],
        front_size=result.front_size,
        wall_time=result.wall_time,
        n_evaluations=result.n_evaluations,
        result=result,
    )


def run_many(
    name: str,
    experiment_id: str,
    scale: Optional[Scale] = None,
    **kwargs,
) -> List[RunSummary]:
    """Run an algorithm over the scale's seed count."""
    scale = scale or Scale.from_env()
    return [
        run_one(name, experiment_id, scale=scale, seed_index=i, **kwargs)
        for i in range(scale.n_seeds)
    ]


def median_hv(summaries: Sequence[RunSummary]) -> float:
    finite = [s.hv_paper for s in summaries if np.isfinite(s.hv_paper)]
    if not finite:
        return float("inf")
    return float(np.median(finite))
