"""Experiment driver: configure, run, and score the three algorithms.

This module is the single place benchmarks and examples go through to
run NSGA-II (the paper's "TPG"), SACGA and MESACGA on the integrator
sizing problem — so that scale (population, generations, Monte-Carlo
depth) is controlled uniformly.

Scale: the paper runs 800-1250 generations with circuit evaluation; the
benchmark default is a reduced scale that preserves every qualitative
relationship while finishing in seconds.  Set the environment variable
``REPRO_FULL=1`` (or pass ``Scale.full()``) to reproduce at paper scale.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.circuits.sizing_problem import C_LOAD_MAX, IntegratorSizingProblem
from repro.circuits.specs import IntegratorSpec
from repro.core.callbacks import ProgressCallback, WallClockTimeout
from repro.core.checkpoint import CheckpointCallback, load_checkpoint
from repro.core.evaluation import EvaluationBackend, make_backend
from repro.core.kernels import kernel_call_counts
from repro.core.mesacga import MESACGA, PAPER_SCHEDULE
from repro.core.nsga2 import NSGA2
from repro.core.results import OptimizationResult
from repro.core.sacga import SACGA, SACGAConfig
from repro.experiments.ledger import LedgerCallback, RunLedger
from repro.obs.exporters import (
    save_metrics_csv,
    save_profile,
    save_prometheus,
    save_telemetry_csv,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import SpanTracer
from repro.obs.telemetry import TelemetryCallback
from repro.metrics.hypervolume import hypervolume_paper
from repro.metrics.diversity import range_coverage, cluster_fraction
from repro.utils.rng import stable_seed

#: Scale objective values into the paper's reporting units
#: (0.1 mW for power, 1 pF for the load-capacitance deficit).
PAPER_HV_SCALE = (1.0e-4, 1.0e-12)


@dataclass(frozen=True)
class Scale:
    """Experiment size knobs shared by all benchmarks.

    ``generations`` here corresponds to the paper's canonical 800-
    iteration runs; individual experiments derive their own budgets from
    it (e.g. Fig 6 uses ``1.5x``).  At the reduced scale the MESACGA
    partition schedule is shrunk proportionally (see
    :func:`default_partition_schedule`), because 20 partitions over a
    sub-100 population leave fewer than 5 members per slice.
    """

    population: int = 80
    generations: int = 200
    n_mc: int = 6
    n_seeds: int = 1
    label: str = "reduced"

    @classmethod
    def full(cls) -> "Scale":
        return cls(population=200, generations=800, n_mc=12, n_seeds=3, label="full")

    @classmethod
    def from_env(cls) -> "Scale":
        if os.environ.get("REPRO_FULL", "").strip() in ("1", "true", "yes"):
            return cls.full()
        return cls()

    def scaled_generations(self, factor: float) -> int:
        """An iteration budget proportional to the canonical 800-iteration run."""
        return max(10, int(round(self.generations * factor)))


def make_problem(
    spec: Optional[IntegratorSpec] = None,
    scale: Optional[Scale] = None,
    use_corners: bool = True,
    mc_seed: int = 2005,
) -> IntegratorSizingProblem:
    """The sizing problem at the given scale's Monte-Carlo depth.

    *use_corners* / *mc_seed* forward to the problem's robustness
    constraint (evaluate across process corners; common-random-number
    Monte-Carlo seed); the defaults are the problem's own defaults, so
    existing callers are byte-compatible.
    """
    scale = scale or Scale.from_env()
    return IntegratorSizingProblem(
        spec=spec, n_mc=scale.n_mc, use_corners=use_corners, mc_seed=mc_seed
    )


def default_phase1_cap(generations: int) -> int:
    """Pure-local Phase-I budget scaled like the paper's 200-of-1250."""
    return max(10, generations // 5)


def default_partition_schedule(scale: Scale) -> Sequence[int]:
    """MESACGA schedule: the paper's at full scale, shrunk when reduced."""
    if scale.population >= 150:
        return PAPER_SCHEDULE
    return (10, 6, 4, 2, 1)


def make_algorithm(
    name: str,
    problem: IntegratorSizingProblem,
    scale: Scale,
    seed: int,
    n_partitions: int = 8,
    partition_schedule: Optional[Sequence[int]] = None,
    config: Optional[SACGAConfig] = None,
    generations: Optional[int] = None,
    backend: Optional[EvaluationBackend] = None,
    kernel: Optional[str] = None,
    metrics=None,
    tracer=None,
):
    """Factory for the three compared algorithms.

    *name* is one of ``"tpg"`` (NSGA-II, the paper's Traditional Purely
    Global baseline), ``"sacga"`` or ``"mesacga"``.  When *config* is not
    given, the Phase-I cap is derived from the generation budget so that
    reduced-scale runs keep the paper's phase proportions.  *backend*
    (an :class:`repro.core.evaluation.EvaluationBackend`) selects how
    fitness batches are evaluated; ``None`` keeps the serial default.
    *kernel* selects the dominance/selection kernel
    (``"blocked"``/``"reference"``; both are bit-identical in output).
    *metrics* / *tracer* (a :class:`repro.obs.MetricsRegistry` /
    :class:`repro.obs.SpanTracer`) enable instrumentation; ``None`` keeps
    the no-op defaults.
    """
    key = name.strip().lower()
    gens = generations if generations is not None else scale.generations
    if config is None:
        config = SACGAConfig(phase1_max_iterations=default_phase1_cap(gens))
    if key in ("tpg", "nsga2", "nsga-ii"):
        return NSGA2(
            problem,
            population_size=scale.population,
            seed=seed,
            backend=backend,
            kernel=kernel,
            metrics=metrics,
            tracer=tracer,
        )
    if key == "sacga":
        grid = problem.partition_grid(n_partitions)
        return SACGA(
            problem,
            grid,
            population_size=scale.population,
            seed=seed,
            config=config,
            backend=backend,
            kernel=kernel,
            metrics=metrics,
            tracer=tracer,
        )
    if key == "mesacga":
        return MESACGA(
            problem,
            axis=1,
            low=0.0,
            high=C_LOAD_MAX,
            partition_schedule=partition_schedule or default_partition_schedule(scale),
            population_size=scale.population,
            seed=seed,
            config=config,
            backend=backend,
            kernel=kernel,
            metrics=metrics,
            tracer=tracer,
        )
    raise KeyError(f"unknown algorithm {name!r} (want tpg / sacga / mesacga)")


@dataclass
class RunSummary:
    """Scores of one optimizer run on the sizing problem."""

    algorithm: str
    seed: int
    hv_paper: float
    coverage: float
    cluster_4_5pF: float
    front_size: int
    wall_time: float
    n_evaluations: int
    result: Optional[OptimizationResult] = field(repr=False, default=None)
    #: Populated only when run_one(metrics=...) enabled instrumentation.
    metrics: Optional[Any] = field(repr=False, default=None)
    tracer: Optional[Any] = field(repr=False, default=None)
    telemetry: Optional[List[Any]] = field(repr=False, default=None)
    profile: Optional[List[Dict[str, Any]]] = field(repr=False, default=None)
    metrics_paths: Optional[Dict[str, str]] = field(repr=False, default=None)


def score_front(front: np.ndarray) -> Dict[str, float]:
    """Paper-HV (0.1 mW x pF units), range coverage, and cluster fraction."""
    if front.shape[0] == 0:
        return {"hv_paper": float("inf"), "coverage": 0.0, "cluster_4_5pF": 0.0}
    return {
        "hv_paper": hypervolume_paper(front, scale=PAPER_HV_SCALE),
        "coverage": range_coverage(front, axis=1, low=0.0, high=C_LOAD_MAX),
        "cluster_4_5pF": cluster_fraction(front, axis=1, low=0.0, high=1.0e-12),
    }


def _as_ledger(ledger: Union[None, str, RunLedger]) -> Optional[RunLedger]:
    if ledger is None or isinstance(ledger, RunLedger):
        return ledger
    return RunLedger(ledger)


def run_one(
    name: str,
    experiment_id: str,
    scale: Optional[Scale] = None,
    generations: Optional[int] = None,
    spec: Optional[IntegratorSpec] = None,
    seed_index: int = 0,
    problem: Optional[IntegratorSizingProblem] = None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    cache_size: Optional[int] = None,
    kernel: Optional[str] = None,
    use_corners: bool = True,
    mc_seed: int = 2005,
    checkpoint_path: Optional[str] = None,
    checkpoint_every: int = 10,
    resume_from: Union[None, str, Dict[str, Any]] = None,
    ledger: Union[None, str, RunLedger] = None,
    ledger_every: int = 1,
    timeout_s: Optional[float] = None,
    callbacks: Sequence[ProgressCallback] = (),
    metrics: Union[None, bool, MetricsRegistry] = None,
    metrics_out: Optional[str] = None,
    **algo_kwargs,
) -> RunSummary:
    """Run one algorithm once and score its front.

    Seeds are derived deterministically from ``(experiment_id, name,
    seed_index)`` so benchmarks are reproducible run to run.  *backend*
    (``"serial"`` / ``"thread"`` / ``"process"`` / ``"shm"``), *workers*
    and *cache_size* configure the evaluation backend; the pool — and,
    for ``"shm"``, its shared-memory arenas — is shut down once the run
    finishes.  *kernel* picks the dominance/selection
    kernel (``"blocked"``/``"reference"``) — a pure speed knob.

    Robustness knobs:

    * *checkpoint_path* + *checkpoint_every*: persist a crash-safe
      checkpoint every K generations.  The payload embeds a ``context``
      describing this call, so ``repro resume <ckpt>`` can rebuild the
      run without the original command line.
    * *resume_from*: checkpoint path (or loaded payload) to continue
      from; the resumed result is byte-identical to an uninterrupted run.
    * *ledger* (+ *ledger_every*): a :class:`RunLedger` or path that
      receives run_started / generation / checkpoint / run_finished /
      run_failed events.
    * *timeout_s*: cooperative wall-clock limit — the run raises
      :class:`~repro.core.callbacks.RunTimeoutError` at the first
      generation boundary past the budget.
    * *callbacks*: extra progress callbacks appended after the built-ins.

    Observability knobs:

    * *metrics*: ``True`` (or a :class:`repro.obs.MetricsRegistry` to
      reuse one across runs) turns on the metrics registry, timing spans
      and the per-generation telemetry callback.  ``False``/``None``
      keeps the no-op path (also enabled implicitly by *metrics_out*).
      Instrumentation is read-only: the optimization trajectory is
      byte-identical with it on or off.
    * *metrics_out*: path prefix; on completion writes
      ``<prefix>.prom`` (Prometheus text exposition),
      ``<prefix>.metrics.csv`` (tidy metric samples),
      ``<prefix>.telemetry.csv`` (per-generation series) and
      ``<prefix>.profile.json`` (the span tree).  Paths land in
      ``RunSummary.metrics_paths``.
    """
    scale = scale or Scale.from_env()
    problem = problem or make_problem(
        spec, scale, use_corners=use_corners, mc_seed=mc_seed
    )
    seed = stable_seed(experiment_id, name, seed_index)
    gens = generations if generations is not None else scale.generations
    run_id = f"{experiment_id}/{name}/seed{seed_index}"
    run_ledger = _as_ledger(ledger)
    if isinstance(metrics, MetricsRegistry):
        registry = metrics
    elif metrics or metrics_out is not None:
        registry = MetricsRegistry()
    else:
        registry = None
    tracer = SpanTracer() if registry is not None else None
    eval_backend = make_backend(backend, workers=workers, cache_size=cache_size)
    algorithm = make_algorithm(
        name, problem, scale, seed, generations=gens, backend=eval_backend,
        kernel=kernel, metrics=registry, tracer=tracer, **algo_kwargs,
    )
    telemetry = None
    if registry is not None:
        telemetry = TelemetryCallback(
            algorithm, registry, kernel_counts=kernel_call_counts
        )
        # Attached before the ledger callback so the ledger's extras_fn
        # sees this generation's sample, not the previous one's.
        algorithm.add_callback(telemetry)
    if run_ledger is not None:
        algorithm.add_callback(
            LedgerCallback(
                run_ledger,
                algorithm,
                run_id=run_id,
                every=ledger_every,
                extras_fn=(
                    (lambda: telemetry.last_sample) if telemetry is not None else None
                ),
            )
        )
    if checkpoint_path is not None:
        # The context makes the checkpoint self-contained: `repro resume`
        # rebuilds this exact run_one call from it.  (It is pickled, not
        # JSON-serialized, so algo_kwargs may hold config objects.)
        context = {
            "name": name,
            "experiment_id": experiment_id,
            "seed_index": seed_index,
            "scale": asdict(scale),
            "generations": gens,
            "backend": backend,
            "workers": workers,
            "cache_size": cache_size,
            "kernel": kernel,
            "use_corners": use_corners,
            "mc_seed": mc_seed,
            "checkpoint_every": checkpoint_every,
            "algo_kwargs": dict(algo_kwargs),
        }
        algorithm.add_callback(
            CheckpointCallback(
                algorithm,
                checkpoint_path,
                every=checkpoint_every,
                context=context,
                ledger=run_ledger,
                run_id=run_id,
            )
        )
    if timeout_s is not None:
        algorithm.add_callback(WallClockTimeout(timeout_s))
    for callback in callbacks:
        algorithm.add_callback(callback)

    if run_ledger is not None:
        run_ledger.emit(
            "run_started",
            run=run_id,
            algorithm=algorithm.algorithm_name,
            seed=seed,
            generations=gens,
            scale=scale.label,
            backend=eval_backend.describe(),
            resumed=resume_from is not None,
        )
    try:
        result = algorithm.run(gens, resume_from=resume_from)
    except BaseException as exc:
        if run_ledger is not None:
            run_ledger.emit(
                "run_failed",
                run=run_id,
                error=f"{type(exc).__name__}: {exc}",
            )
        raise
    finally:
        eval_backend.close()
    scores = score_front(result.front_objectives)
    if run_ledger is not None:
        run_ledger.emit(
            "run_finished",
            run=run_id,
            wall_time=result.wall_time,
            n_evaluations=result.n_evaluations,
            front_size=result.front_size,
            hv_paper=scores["hv_paper"],
            coverage=scores["coverage"],
            backend_stats=eval_backend.stats.as_dict(),
        )
    metrics_paths = None
    if metrics_out is not None and registry is not None:
        metrics_paths = {
            "prometheus": str(save_prometheus(registry, f"{metrics_out}.prom")),
            "metrics_csv": str(
                save_metrics_csv(registry, f"{metrics_out}.metrics.csv")
            ),
            "telemetry_csv": str(
                save_telemetry_csv(telemetry.samples, f"{metrics_out}.telemetry.csv")
            ),
            "profile": str(
                save_profile(tracer.profile(), f"{metrics_out}.profile.json")
            ),
        }
    return RunSummary(
        algorithm=result.algorithm,
        seed=seed,
        hv_paper=scores["hv_paper"],
        coverage=scores["coverage"],
        cluster_4_5pF=scores["cluster_4_5pF"],
        front_size=result.front_size,
        wall_time=result.wall_time,
        n_evaluations=result.n_evaluations,
        result=result,
        metrics=registry,
        tracer=tracer,
        telemetry=(telemetry.samples if telemetry is not None else None),
        profile=(tracer.profile() if tracer is not None else None),
        metrics_paths=metrics_paths,
    )


def resume_run(
    checkpoint_path: str,
    ledger: Union[None, str, RunLedger] = None,
    timeout_s: Optional[float] = None,
    metrics: Union[None, bool, MetricsRegistry] = None,
    metrics_out: Optional[str] = None,
    callbacks: Sequence[ProgressCallback] = (),
) -> RunSummary:
    """Resume a crashed ``run_one`` from its checkpoint file.

    The checkpoint must have been written by :func:`run_one` (its
    ``context`` records how to rebuild the run); checkpoints written by a
    bare :class:`CheckpointCallback` lack that context and must be
    resumed through ``BaseOptimizer.run(resume_from=...)`` directly.
    Checkpointing continues to the same file.  *callbacks* are appended
    to the resumed run exactly as in :func:`run_one` — the service-layer
    workers use this to keep cancellation cooperative across a resume.
    """
    payload = load_checkpoint(checkpoint_path)
    context = payload.get("context")
    if not isinstance(context, dict):
        raise ValueError(
            f"{checkpoint_path}: no runner context in checkpoint — resume it "
            "via BaseOptimizer.run(resume_from=...) on a hand-built optimizer"
        )
    scale = Scale(**context["scale"])
    return run_one(
        context["name"],
        context["experiment_id"],
        scale=scale,
        generations=context["generations"],
        seed_index=context["seed_index"],
        backend=context["backend"],
        workers=context["workers"],
        cache_size=context["cache_size"],
        kernel=context["kernel"],
        use_corners=context.get("use_corners", True),
        mc_seed=context.get("mc_seed", 2005),
        checkpoint_path=checkpoint_path,
        checkpoint_every=context.get("checkpoint_every", 10),
        resume_from=payload,
        ledger=ledger,
        timeout_s=timeout_s,
        callbacks=callbacks,
        metrics=metrics,
        metrics_out=metrics_out,
        **context.get("algo_kwargs", {}),
    )


def run_many(
    name: str,
    experiment_id: str,
    scale: Optional[Scale] = None,
    retries: int = 0,
    skip_failures: bool = False,
    ledger: Union[None, str, RunLedger] = None,
    **kwargs,
) -> List[RunSummary]:
    """Run an algorithm over the scale's seed count, fault-tolerantly.

    A seed that raises (crash, or :class:`RunTimeoutError` when
    ``timeout_s`` is forwarded to :func:`run_one`) is retried up to
    *retries* times; when retries are exhausted the seed is abandoned —
    logged to the *ledger* as ``seed_abandoned`` — and the sweep moves on
    to the remaining seeds.  With the defaults (``retries=0,
    skip_failures=False``) the historical behavior is kept: the first
    failure propagates.

    Returns the summaries of the seeds that succeeded.
    """
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    scale = scale or Scale.from_env()
    run_ledger = _as_ledger(ledger)
    tolerant = retries > 0 or skip_failures
    if run_ledger is not None:
        run_ledger.emit(
            "sweep_started",
            algorithm=name,
            experiment_id=experiment_id,
            n_seeds=scale.n_seeds,
            scale=scale.label,
            retries=retries,
        )
    summaries: List[RunSummary] = []
    n_abandoned = 0
    for i in range(scale.n_seeds):
        attempt = 0
        while True:
            try:
                summaries.append(
                    run_one(
                        name,
                        experiment_id,
                        scale=scale,
                        seed_index=i,
                        ledger=run_ledger,
                        **kwargs,
                    )
                )
                break
            except Exception as exc:
                # run_one already emitted run_failed for this attempt.
                if attempt < retries:
                    attempt += 1
                    if run_ledger is not None:
                        run_ledger.emit(
                            "retry",
                            run=f"{experiment_id}/{name}/seed{i}",
                            attempt=attempt,
                            max_retries=retries,
                            error=f"{type(exc).__name__}: {exc}",
                        )
                    continue
                if tolerant:
                    n_abandoned += 1
                    if run_ledger is not None:
                        run_ledger.emit(
                            "seed_abandoned",
                            run=f"{experiment_id}/{name}/seed{i}",
                            attempts=attempt + 1,
                            error=f"{type(exc).__name__}: {exc}",
                        )
                    break
                raise
    if run_ledger is not None:
        run_ledger.emit(
            "sweep_finished",
            algorithm=name,
            experiment_id=experiment_id,
            n_succeeded=len(summaries),
            n_abandoned=n_abandoned,
        )
    return summaries


def median_hv(summaries: Sequence[RunSummary]) -> float:
    finite = [s.hv_paper for s in summaries if np.isfinite(s.hv_paper)]
    if not finite:
        return float("inf")
    return float(np.median(finite))
