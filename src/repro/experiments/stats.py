"""Multi-seed aggregation and ordering statistics.

The paper's Section-5 trends are statements over repeated runs ("in all
cases ... the quality ... were found to be in the order MESACGA >=
SACGA >= TPG").  These helpers make such claims measurable: robust
per-algorithm summaries (median / IQR) and a paired sign test for
"A beats B" assertions across seeds/specs without distributional
assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb
from typing import Dict, Sequence

import numpy as np


@dataclass(frozen=True)
class SampleSummary:
    """Robust location/spread summary of one metric over repeated runs."""

    n: int
    median: float
    q1: float
    q3: float
    minimum: float
    maximum: float

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"median {self.median:.4g} (IQR {self.q1:.4g}-{self.q3:.4g}, "
            f"n={self.n})"
        )


def summarize(values: Sequence[float]) -> SampleSummary:
    """Median / quartiles / extremes of a sample (NaNs excluded)."""
    arr = np.asarray(list(values), dtype=float)
    arr = arr[np.isfinite(arr)]
    if arr.size == 0:
        raise ValueError("cannot summarize an empty (or all-NaN) sample")
    return SampleSummary(
        n=int(arr.size),
        median=float(np.median(arr)),
        q1=float(np.quantile(arr, 0.25)),
        q3=float(np.quantile(arr, 0.75)),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )


def sign_test_p_value(wins: int, losses: int) -> float:
    """Two-sided exact sign-test p-value for paired comparisons.

    Ties are excluded by the caller (pass only strict wins/losses).
    Returns 1.0 when there is no informative pair.
    """
    if wins < 0 or losses < 0:
        raise ValueError("wins/losses must be non-negative")
    n = wins + losses
    if n == 0:
        return 1.0
    k = max(wins, losses)
    # P(X >= k) for X ~ Binomial(n, 1/2), doubled (two-sided), capped at 1.
    tail = sum(comb(n, i) for i in range(k, n + 1)) / 2.0**n
    return float(min(1.0, 2.0 * tail))


@dataclass
class PairedComparison:
    """Outcome of a paired 'A vs B' comparison over matched runs."""

    wins: int
    losses: int
    ties: int
    p_value: float

    @property
    def n(self) -> int:
        return self.wins + self.losses + self.ties

    def favors_a(self, alpha: float = 0.1) -> bool:
        """True when A wins the sign test at level *alpha*."""
        return self.wins > self.losses and self.p_value <= alpha


def paired_comparison(
    a: Sequence[float],
    b: Sequence[float],
    higher_is_better: bool = True,
    tie_tolerance: float = 0.0,
) -> PairedComparison:
    """Compare matched samples element-wise with an exact sign test.

    Parameters
    ----------
    a, b:
        Matched metric values (same seeds / same specs, in order).
    higher_is_better:
        Direction of the metric (set ``False`` for the paper's
        hypervolume, where lower is better).
    tie_tolerance:
        Absolute difference below which a pair counts as a tie.
    """
    a_arr = np.asarray(list(a), dtype=float)
    b_arr = np.asarray(list(b), dtype=float)
    if a_arr.shape != b_arr.shape:
        raise ValueError(
            f"paired samples differ in shape: {a_arr.shape} vs {b_arr.shape}"
        )
    diff = a_arr - b_arr
    if not higher_is_better:
        diff = -diff
    wins = int(np.sum(diff > tie_tolerance))
    losses = int(np.sum(diff < -tie_tolerance))
    ties = int(diff.size - wins - losses)
    return PairedComparison(
        wins=wins,
        losses=losses,
        ties=ties,
        p_value=sign_test_p_value(wins, losses),
    )


def ordering_table(
    metric_by_algorithm: Dict[str, Sequence[float]],
    higher_is_better: bool = True,
) -> str:
    """Readable summary + pairwise sign tests for a set of algorithms."""
    lines = []
    for name, values in metric_by_algorithm.items():
        lines.append(f"{name:12s} {summarize(values)}")
    names = list(metric_by_algorithm)
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            cmp = paired_comparison(
                metric_by_algorithm[a],
                metric_by_algorithm[b],
                higher_is_better=higher_is_better,
            )
            lines.append(
                f"{a} vs {b}: {cmp.wins}W/{cmp.losses}L/{cmp.ties}T "
                f"(p={cmp.p_value:.3f})"
            )
    return "\n".join(lines)
