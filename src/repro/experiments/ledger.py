"""Structured JSONL run ledger: an append-only event trace of experiments.

Long sweeps (the paper's 800-1250-generation runs across seeds) need
observability that survives crashes: a plain log line is unparseable and
an in-memory record dies with the process.  The ledger is the middle
ground — one JSON object per line, appended (and flushed) per event, so

* a crash never loses more than the event being written,
* the trace is greppable/`jq`-able as-is, and
* ``repro trace <ledger>`` can tail or summarize it after the fact.

Event vocabulary (all carry ``event``, ``ts`` — wall clock — plus
``mono``, an absolute ``time.monotonic()`` reading immune to clock
steps, and ``elapsed_s``, seconds since this ledger object was created):

==================  =====================================================
``sweep_started``    ``run_many`` begins (algorithm, seeds, scale label)
``run_started``      one seed's run begins (run id, seed, generations)
``generation``       per-generation progress (emitted by
                     :class:`LedgerCallback`: feasible count, evaluation
                     counters, cumulative eval wall-clock)
``checkpoint``       a checkpoint was persisted (generation, path)
``run_finished``     the run's scores + backend stats
``run_failed``       exception text for a crashed/hung seed
``retry``            a failed seed is being retried
``seed_abandoned``   retries exhausted; the sweep moves on
``sweep_finished``   sweep totals
==================  =====================================================

Nothing here imports the optimizers — the ledger is a pure sink, wired
in by :mod:`repro.experiments.runner`.
"""

from __future__ import annotations

import json
import math
import time
from collections import Counter
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

PathLike = Union[str, Path]


def _sanitize(value: Any) -> Any:
    """Make *value* strictly JSON-able (non-finite floats become None)."""
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {str(k): _sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    if hasattr(value, "item"):  # numpy scalars
        return _sanitize(value.item())
    return value


class RunLedger:
    """Append-only JSONL event sink.

    Each :meth:`emit` opens the file, appends one line, flushes and
    closes — slower than keeping the handle open, but a generation of
    circuit evaluation dwarfs an open/close, and it guarantees every
    completed event is durable regardless of how the process dies.

    *bound* fields are merged into **every** record this ledger writes —
    the serve stack binds ``trace_id``/``job_id``/worker/attempt here so
    a single grep stitches a job's events across worker attempts.  Bound
    fields never overwrite an event's own fields of the same name.

    Every record carries three timestamps: ``ts`` (wall clock, ISO),
    ``elapsed_s`` (relative to ledger creation — resets across resumed
    attempts), and ``mono`` (absolute ``time.monotonic()`` — immune to
    wall-clock steps, comparable only within one process boot).
    """

    def __init__(
        self, path: PathLike, bound: Optional[Dict[str, Any]] = None
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.bound = _sanitize(dict(bound)) if bound else {}
        self._t0 = time.perf_counter()

    def emit(self, event: str, **fields: Any) -> Dict[str, Any]:
        record = {
            "event": str(event),
            "ts": datetime.now(timezone.utc).isoformat(timespec="milliseconds"),
            "elapsed_s": round(time.perf_counter() - self._t0, 6),
            "mono": round(time.monotonic(), 6),
        }
        record.update(self.bound)
        record.update(_sanitize(fields))
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(record) + "\n")
        return record


class LedgerCallback:
    """Per-generation progress callback that feeds a :class:`RunLedger`.

    Emits a ``generation`` event every *every* generations with the
    population's feasibility count and the optimizer's evaluation and
    backend counters (cumulative, so the trace is self-contained even
    when generations are skipped).

    *extras_fn*, when given, is called per emitted event and its return
    value is attached under ``telemetry`` — the runner wires the
    telemetry callback's latest sample in here, enriching the trace with
    annealing temperature, gate probabilities, partition occupancy, etc.
    All fields pass through :func:`_sanitize`, so degenerate populations
    (zero feasible members, or empty after truncation) serialize NaN-free
    (``null``, never ``NaN``, in the JSON).
    """

    def __init__(
        self,
        ledger: RunLedger,
        optimizer,
        run_id: Optional[str] = None,
        every: int = 1,
        extras_fn: Optional[Any] = None,
    ) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.ledger = ledger
        self.optimizer = optimizer
        self.run_id = run_id
        self.every = int(every)
        self.extras_fn = extras_fn

    def __call__(self, generation: int, population) -> None:
        if generation % self.every:
            return
        stats = self.optimizer.backend.stats
        size = int(population.size)
        n_feasible = int(population.feasible.sum()) if size else 0
        fields: Dict[str, Any] = {
            "run": self.run_id,
            "generation": int(generation),
            "n_feasible": n_feasible,
            "population_size": size,
            "feasible_ratio": (n_feasible / size) if size else None,
            "n_evaluations": int(self.optimizer._n_evaluations),
            "eval_time_s": round(float(stats.eval_time), 6),
        }
        if self.extras_fn is not None:
            extras = self.extras_fn()
            if extras:
                fields["telemetry"] = extras
        self.ledger.emit("generation", **fields)


# ----------------------------------------------------------- trace reading


def read_ledger(path: PathLike) -> List[Dict[str, Any]]:
    """Parse a ledger file; a torn final line (crash mid-write) is skipped."""
    events: List[Dict[str, Any]] = []
    text = Path(path).read_text(encoding="utf-8")
    lines = text.splitlines()
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                break  # torn tail from a crash — everything before it is good
            raise ValueError(f"{path}: corrupt ledger line {i + 1}: {line[:80]}")
    return events


def tail_events(
    path: PathLike, n: int = 10, block_size: int = 65536
) -> List[Dict[str, Any]]:
    """The last *n* events of a ledger, read from the end of the file.

    Streams fixed-size blocks backwards from EOF until enough newlines
    have been seen, so tailing a multi-gigabyte sweep ledger costs only
    the bytes the last *n* lines occupy — not a full-file parse.  Like
    :func:`read_ledger`, a torn final line (crash mid-write) is skipped;
    a corrupt line elsewhere in the tail window raises.
    """
    if n <= 0:
        return []
    path = Path(path)
    with path.open("rb") as fh:
        fh.seek(0, 2)  # SEEK_END
        pos = fh.tell()
        buf = b""
        while pos > 0 and buf.count(b"\n") <= n:
            step = min(block_size, pos)
            pos -= step
            fh.seek(pos)
            buf = fh.read(step) + buf
    # errors="replace" only matters for a multi-byte char cut at the block
    # boundary, which can only sit in the partial first line dropped below.
    lines = buf.decode("utf-8", errors="replace").split("\n")
    if pos > 0:
        lines = lines[1:]  # mid-line cut: the first fragment is partial
    lines = [line.strip() for line in lines if line.strip()]
    events: List[Dict[str, Any]] = []
    for i, line in enumerate(lines):
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                break  # torn tail from a crash — everything before it is good
            raise ValueError(f"{path}: corrupt ledger line: {line[:80]}")
    return events[-n:]


def summarize_ledger(events: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate a trace into sweep-level facts (what ``repro trace`` prints)."""
    events = list(events)
    counts = Counter(e.get("event", "?") for e in events)
    runs: Dict[str, Dict[str, Any]] = {}
    for e in events:
        run = e.get("run")
        if run is None:
            continue
        info = runs.setdefault(
            run, {"status": "running", "last_generation": None, "failures": 0}
        )
        elapsed = e.get("elapsed_s")
        if isinstance(elapsed, (int, float)) and math.isfinite(elapsed):
            if "_first_elapsed" not in info:
                info["_first_elapsed"] = float(elapsed)
            info["_last_elapsed"] = float(elapsed)
        mono = e.get("mono")
        if isinstance(mono, (int, float)) and math.isfinite(mono):
            if "_first_mono" not in info:
                info["_first_mono"] = float(mono)
            info["_last_mono"] = float(mono)
        kind = e.get("event")
        if kind == "generation" or kind == "checkpoint":
            info["last_generation"] = e.get("generation")
        elif kind == "run_finished":
            info["status"] = "finished"
            if "wall_time" in e:
                info["wall_time"] = e["wall_time"]
        elif kind == "run_failed":
            info["failures"] += 1
            info["status"] = "failed"
            info["error"] = e.get("error")
        elif kind == "seed_abandoned":
            info["status"] = "abandoned"
        elif kind == "retry":
            info["status"] = "retrying"
    for info in runs.values():
        # Crash-torn ledgers never see a run_finished event; fall back to
        # the span of the run's own event timestamps so `repro trace`
        # still reports wall-clock (tagged so readers know the source).
        # Absolute monotonic stamps are preferred over elapsed_s: they
        # survive wall-clock steps AND ledger re-opens across resumed
        # attempts (elapsed_s resets to 0 per RunLedger object).
        first = info.pop("_first_elapsed", None)
        last = info.pop("_last_elapsed", None)
        first_mono = info.pop("_first_mono", None)
        last_mono = info.pop("_last_mono", None)
        if info.get("wall_time") is not None:
            info["wall_time_source"] = "run_finished"
        elif first_mono is not None and last_mono is not None:
            info["wall_time"] = round(last_mono - first_mono, 6)
            info["wall_time_source"] = "monotonic"
        elif first is not None and last is not None:
            info["wall_time"] = round(last - first, 6)
            info["wall_time_source"] = "events"
    summary: Dict[str, Any] = {
        "n_events": len(events),
        "event_counts": dict(sorted(counts.items())),
        "runs": runs,
        "n_runs_finished": sum(
            1 for r in runs.values() if r["status"] == "finished"
        ),
        "n_runs_failed": sum(
            1 for r in runs.values() if r["status"] in ("failed", "abandoned")
        ),
    }
    if events:
        summary["first_ts"] = events[0].get("ts")
        summary["last_ts"] = events[-1].get("ts")
    return summary


def format_event(event: Dict[str, Any]) -> str:
    """One human-readable line for ``repro trace --tail``."""
    ts = event.get("ts", "")
    kind = event.get("event", "?")
    rest = {
        k: v
        for k, v in event.items()
        if k not in ("event", "ts", "elapsed_s", "mono") and v is not None
    }
    details = " ".join(f"{k}={v}" for k, v in rest.items())
    return f"{ts}  {kind:<14s} {details}".rstrip()


def format_summary(summary: Dict[str, Any]) -> str:
    """Multi-line report for ``repro trace`` without ``--tail``."""
    lines = [
        f"events: {summary['n_events']}"
        + (
            f"  ({summary.get('first_ts')} .. {summary.get('last_ts')})"
            if summary.get("first_ts")
            else ""
        )
    ]
    for kind, count in summary["event_counts"].items():
        lines.append(f"  {kind:<16s} {count}")
    runs = summary["runs"]
    if runs:
        lines.append(
            f"runs: {len(runs)}  finished={summary['n_runs_finished']}  "
            f"failed={summary['n_runs_failed']}"
        )
        for run, info in runs.items():
            bits = [f"  {run:<32s} {info['status']}"]
            if info.get("last_generation") is not None:
                bits.append(f"gen={info['last_generation']}")
            if info.get("wall_time") is not None:
                # "~" flags wall-clock reconstructed from event timestamps
                # (torn ledger) rather than reported by run_finished.
                approx = (
                    "~"
                    if info.get("wall_time_source") in ("events", "monotonic")
                    else ""
                )
                bits.append(f"wall={approx}{info['wall_time']:.2f}s")
            if info.get("failures"):
                bits.append(f"failures={info['failures']}")
            if info.get("error"):
                bits.append(f"error={info['error']!r}")
            lines.append(" ".join(bits))
    return "\n".join(lines)
