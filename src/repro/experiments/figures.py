"""Per-figure reproduction functions.

One function per figure/table of the paper's evaluation, each returning a
:class:`FigureData` with the same series the paper plots.  Benchmarks in
``benchmarks/`` call these and print the rows; EXPERIMENTS.md records the
paper-vs-measured comparison.

All experiments honour :class:`~repro.experiments.runner.Scale` — the
default reduced scale preserves the qualitative relationships; set
``REPRO_FULL=1`` for paper-scale budgets (800-1250 generations,
population 200).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.circuits.sizing_problem import C_LOAD_MAX
from repro.circuits.specs import spec_ladder
from repro.core.annealing import shape_parameters
from repro.experiments.reporting import format_table, front_rows, overlay_series
from repro.experiments.runner import (
    PAPER_HV_SCALE,
    Scale,
    default_partition_schedule,
    make_problem,
    run_one,
    score_front,
)
from repro.metrics.hypervolume import hypervolume_paper, hypervolume_ref

#: Reference point for the standard (higher-is-better) hypervolume:
#: 2 mW of power and the full 5 pF deficit.
REF_POINT = (2.0e-3, 5.0e-12)


@dataclass
class FigureData:
    """Structured result of one reproduced figure or table."""

    figure_id: str
    title: str
    series: Dict[str, np.ndarray] = field(default_factory=dict)
    rows: List[List[object]] = field(default_factory=list)
    headers: List[str] = field(default_factory=list)
    notes: str = ""

    def render(self) -> str:
        parts = [f"== {self.figure_id}: {self.title} =="]
        if self.headers and self.rows:
            parts.append(format_table(self.headers, self.rows))
        if self.notes:
            parts.append(self.notes)
        return "\n".join(parts)


# --------------------------------------------------------------------- Fig 2


def figure2(scale: Optional[Scale] = None) -> FigureData:
    """NSGA-II front after the canonical budget: the clustering pathology."""
    scale = scale or Scale.from_env()
    summary = run_one("tpg", "fig2", scale=scale)
    front = summary.result.front_objectives
    rows = front_rows(front)
    data = FigureData(
        figure_id="Fig2",
        title="Pareto front after NSGA-II (TPG) — clustering along load cap",
        series={"front": front},
        headers=["c_load_pF", "power_mW"],
        rows=rows,
        notes=(
            f"coverage of 0-5 pF: {summary.coverage:.2f}; "
            f"fraction of front in 4-5 pF: {summary.cluster_4_5pF:.2f} "
            "(paper: solutions cluster mostly between 4 and 5 pF)"
        ),
    )
    return data


# --------------------------------------------------------------------- Fig 4


def figure4(
    scale: Optional[Scale] = None, n: int = 5, span: int = 100, n_points: int = 11
) -> FigureData:
    """SA participation-probability curves (pure eqns (2)-(4), no GA).

    *scale* is accepted for registry uniformity but unused — this figure
    is purely analytic.
    """
    gate = shape_parameters(n=n, span=span)
    headers = ["gen - gen_t"] + [f"i={i}" for i in range(1, n + 1)]
    offsets = np.linspace(0, span, n_points)
    rows = []
    series: Dict[str, np.ndarray] = {"offsets": offsets}
    curves = []
    for i in range(1, n + 1):
        curves.append(gate.probability(i, offsets))
        series[f"i={i}"] = curves[-1]
    for k, off in enumerate(offsets):
        rows.append([float(off)] + [float(c[k]) for c in curves])
    return FigureData(
        figure_id="Fig4",
        title=f"Participation probability curves (n={n}, span={span})",
        series=series,
        headers=headers,
        rows=rows,
        notes=(
            f"gate constants: k1={gate.k1:.3g} k2={gate.k2:.3g} "
            f"alpha={gate.alpha:.3g} T_init={gate.schedule.t_init:.3g}"
        ),
    )


# --------------------------------------------------------------------- Fig 5


def figure5(scale: Optional[Scale] = None, n_partitions: int = 8) -> FigureData:
    """TPG vs 8-partition SACGA fronts at equal budget."""
    scale = scale or Scale.from_env()
    tpg = run_one("tpg", "fig5", scale=scale)
    sacga = run_one("sacga", "fig5", scale=scale, n_partitions=n_partitions)
    rows = []
    for name, s in (("Only Global", tpg), ("SACGA", sacga)):
        rows.append(
            [
                name,
                s.coverage,
                s.hv_paper,
                s.front_size,
                _front_c_span(s.result.front_objectives),
            ]
        )
    plot = overlay_series(
        [
            ("Only Global", *_front_xy(tpg.result.front_objectives), "o"),
            ("SACGA", *_front_xy(sacga.result.front_objectives), "*"),
        ],
        x_label="c_load (pF)",
        y_label="power (mW)",
    )
    return FigureData(
        figure_id="Fig5",
        title="Pareto fronts: traditional purely-global vs SACGA",
        series={
            "tpg_front": tpg.result.front_objectives,
            "sacga_front": sacga.result.front_objectives,
        },
        headers=["algorithm", "coverage", "hv_paper", "front_size", "c_span_pF"],
        rows=rows,
        notes=plot,
    )


# --------------------------------------------------------------------- Fig 6


def figure6(
    scale: Optional[Scale] = None,
    partition_counts: Optional[List[int]] = None,
) -> FigureData:
    """Paper-HV vs static partition count m (1.5x canonical budget)."""
    scale = scale or Scale.from_env()
    counts = partition_counts or [6, 8, 10, 12, 14, 16, 18, 20, 22, 24]
    gens = scale.scaled_generations(1.5)
    rows = []
    hv = []
    for m in counts:
        summary = run_one(
            "sacga", "fig6", scale=scale, generations=gens, n_partitions=m
        )
        hv.append(summary.hv_paper)
        rows.append([m, summary.hv_paper, summary.coverage, summary.front_size])
    hv_arr = np.asarray(hv)
    finite = np.isfinite(hv_arr)
    best = counts[int(np.argmin(np.where(finite, hv_arr, np.inf)))]
    return FigureData(
        figure_id="Fig6",
        title="Determination of optimal number of partitions",
        series={"m": np.asarray(counts, float), "hv_paper": hv_arr},
        headers=["m", "hv_paper", "coverage", "front_size"],
        rows=rows,
        notes=f"best m = {best} (paper: 16 for its problem instance)",
    )


# --------------------------------------------------------------------- Fig 8


def figure8(scale: Optional[Scale] = None) -> FigureData:
    """Three-way front comparison: TPG vs SACGA vs MESACGA."""
    scale = scale or Scale.from_env()
    runs = {
        "Only Global": run_one("tpg", "fig8", scale=scale),
        "SACGA": run_one("sacga", "fig8", scale=scale, n_partitions=8),
        "MESACGA": run_one("mesacga", "fig8", scale=scale),
    }
    rows = []
    for name, s in runs.items():
        front = s.result.front_objectives
        rows.append(
            [
                name,
                s.coverage,
                s.hv_paper,
                hypervolume_ref(front, REF_POINT) * 1e15 if front.size else 0.0,
                s.front_size,
            ]
        )
    plot = overlay_series(
        [
            ("Only Global", *_front_xy(runs["Only Global"].result.front_objectives), "o"),
            ("SACGA", *_front_xy(runs["SACGA"].result.front_objectives), "+"),
            ("MESACGA", *_front_xy(runs["MESACGA"].result.front_objectives), "*"),
        ],
        x_label="c_load (pF)",
        y_label="power (mW)",
    )
    return FigureData(
        figure_id="Fig8",
        title="Pareto fronts of TPG, SACGA and MESACGA at equal budget",
        series={k: v.result.front_objectives for k, v in runs.items()},
        headers=["algorithm", "coverage", "hv_paper", "hv_ref_fWF", "front_size"],
        rows=rows,
        notes=plot,
    )


# --------------------------------------------------------------------- Fig 9


def figure9(
    scale: Optional[Scale] = None,
    budgets: Optional[List[float]] = None,
) -> FigureData:
    """SACGA quality vs total iteration budget (plateau past ~1000)."""
    scale = scale or Scale.from_env()
    fractions = budgets or [0.125, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5]
    rows = []
    hv = []
    gens_list = []
    for frac in fractions:
        gens = scale.scaled_generations(frac)
        summary = run_one(
            "sacga", "fig9", scale=scale, generations=gens, n_partitions=8
        )
        gens_list.append(gens)
        hv.append(summary.hv_paper)
        rows.append([gens, summary.hv_paper, summary.coverage])
    return FigureData(
        figure_id="Fig9",
        title="SACGA performance vs preset total number of iterations",
        series={
            "iterations": np.asarray(gens_list, float),
            "hv_paper": np.asarray(hv),
        },
        headers=["iterations", "hv_paper", "coverage"],
        rows=rows,
        notes="paper: little improvement beyond span ~ 1000 iterations",
    )


# -------------------------------------------------------------------- Fig 10


def figure10(
    scale: Optional[Scale] = None,
    spans: Optional[List[float]] = None,
) -> FigureData:
    """Paper-HV at the end of each MESACGA phase for several span values."""
    scale = scale or Scale.from_env()
    span_fracs = spans or [0.0625, 0.125, 0.1875]  # 50/100/150 of the 800 scale
    rows = []
    series: Dict[str, np.ndarray] = {}
    schedule = tuple(default_partition_schedule(scale))
    for frac in span_fracs:
        span = max(5, scale.scaled_generations(frac))
        gens = scale.scaled_generations(0.25) + span * len(schedule)
        summary = run_one(
            "mesacga",
            f"fig10-span{span}",
            scale=scale,
            generations=gens,
            partition_schedule=schedule,
        )
        hv_per_phase = phase_end_hypervolumes(summary.result)
        series[f"span={span}"] = np.asarray(hv_per_phase)
        for phase_idx, hv in enumerate(hv_per_phase, start=1):
            rows.append([span, phase_idx, hv])
    return FigureData(
        figure_id="Fig10",
        title="Progress of the Pareto front across MESACGA phases",
        series=series,
        headers=["span", "phase", "hv_paper"],
        rows=rows,
        notes="paper: HV falls phase over phase; larger span ends lower",
    )


def phase_end_hypervolumes(result) -> List[float]:
    """Paper-HV of the recorded front at the last generation of each phase."""
    hv: Dict[int, float] = {}
    for rec in result.history:
        phase = int(rec.extras.get("phase", 0))
        if phase < 1 or rec.front_objectives.size == 0:
            continue
        hv[phase] = hypervolume_paper(rec.front_objectives, scale=PAPER_HV_SCALE)
    return [hv[k] for k in sorted(hv)]


# -------------------------------------------------------------------- Fig 11


def figure11(scale: Optional[Scale] = None) -> FigureData:
    """Long MESACGA vs the best static-partition SACGA (m=16)."""
    scale = scale or Scale.from_env()
    gens = scale.scaled_generations(1.5)  # the paper's 1200/1250-iteration runs
    sacga = run_one("sacga", "fig11", scale=scale, generations=gens, n_partitions=16)
    mesacga = run_one("mesacga", "fig11", scale=scale, generations=gens)
    rows = [
        ["SACGA m=16", sacga.hv_paper, sacga.coverage, sacga.front_size],
        ["MESACGA", mesacga.hv_paper, mesacga.coverage, mesacga.front_size],
    ]
    plot = overlay_series(
        [
            ("SACGA m=16", *_front_xy(sacga.result.front_objectives), "+"),
            ("MESACGA", *_front_xy(mesacga.result.front_objectives), "*"),
        ],
        x_label="c_load (pF)",
        y_label="power (mW)",
    )
    return FigureData(
        figure_id="Fig11",
        title="MESACGA vs best static SACGA (m=16) at the long budget",
        series={
            "sacga16": sacga.result.front_objectives,
            "mesacga": mesacga.result.front_objectives,
        },
        headers=["algorithm", "hv_paper", "coverage", "front_size"],
        rows=rows,
        notes=plot + "\npaper: 22.19 (SACGA-16) vs 21.83 (MESACGA) — comparable",
    )


# ------------------------------------------------------------------ T1 / T2


def table_t1(
    scale: Optional[Scale] = None,
    rungs: Optional[List[int]] = None,
) -> FigureData:
    """Quality ordering MESACGA >= SACGA >= TPG across the spec ladder.

    The ordering is measured by the reference-point hypervolume (higher
    is better), which rewards both convergence and coverage; the paper's
    origin-anchored metric is reported alongside.
    """
    scale = scale or Scale.from_env()
    ladder = spec_ladder()
    chosen = rungs or [4, 9, 12, 15]
    rows = []
    order_ok = 0
    for rung in chosen:
        spec = ladder[rung]
        scores = {}
        for algo in ("tpg", "sacga", "mesacga"):
            summary = run_one(
                algo,
                f"t1-{rung}",
                scale=scale,
                spec=spec,
                **({"n_partitions": 8} if algo == "sacga" else {}),
            )
            front = summary.result.front_objectives
            scores[algo] = hypervolume_ref(front, REF_POINT) if front.size else 0.0
            rows.append(
                [
                    spec.name,
                    algo,
                    scores[algo] * 1e15,
                    summary.coverage,
                    summary.hv_paper,
                ]
            )
        if scores["mesacga"] >= scores["sacga"] * 0.95 >= scores["tpg"] * 0.95:
            order_ok += 1
    return FigureData(
        figure_id="T1",
        title="Quality ordering across the specification ladder",
        headers=["spec", "algorithm", "hv_ref_fWF", "coverage", "hv_paper"],
        rows=rows,
        notes=(
            f"ordering MESACGA >= SACGA >= TPG holds on {order_ok}/{len(chosen)} "
            "rungs (paper: holds on all 20 specs for budgets > 650 iterations)"
        ),
    )


def table_t2(scale: Optional[Scale] = None) -> FigureData:
    """Runtime overhead of SACGA/MESACGA over NSGA-II (paper: ~18%)."""
    scale = scale or Scale.from_env()
    times = {}
    for algo in ("tpg", "sacga", "mesacga"):
        start = time.perf_counter()
        run_one(
            algo,
            "t2",
            scale=scale,
            **({"n_partitions": 8} if algo == "sacga" else {}),
        )
        times[algo] = time.perf_counter() - start
    base = times["tpg"]
    rows = [
        [algo, t, (t / base - 1.0) * 100.0]
        for algo, t in times.items()
    ]
    return FigureData(
        figure_id="T2",
        title="Wall-time overhead vs NSGA-II at equal budget",
        headers=["algorithm", "seconds", "overhead_%"],
        rows=rows,
        notes="paper: SACGA/MESACGA average ~18% more compute time than NSGA-II",
    )


# ------------------------------------------------------------------ helpers


def _front_xy(front: np.ndarray):
    f = np.atleast_2d(np.asarray(front, float))
    if f.size == 0:
        return np.zeros(0), np.zeros(0)
    return (C_LOAD_MAX - f[:, 1]) * 1e12, f[:, 0] * 1e3


def _front_c_span(front: np.ndarray) -> str:
    x, _ = _front_xy(front)
    if x.size == 0:
        return "-"
    return f"{x.min():.2f}-{x.max():.2f}"


ALL_FIGURES = {
    "fig2": figure2,
    "fig4": figure4,
    "fig5": figure5,
    "fig6": figure6,
    "fig8": figure8,
    "fig9": figure9,
    "fig10": figure10,
    "fig11": figure11,
    "t1": table_t1,
    "t2": table_t2,
}
