"""DesignSurface — the deliverable of the paper's methodology as an API.

The point of design-space exploration (paper Sections 1-2) is a reusable
*surface*: for any load capacitance a subsystem designer needs driven,
the minimum-power sizing that achieves it.  This module wraps a set of
explored designs into that object:

* build it from one or many optimizer results (:meth:`from_results`);
* query the achievable power at a load (:meth:`power_at`) or fetch the
  actual sizing (:meth:`design_for`);
* merge surfaces from independent runs (non-dominated merge);
* round-trip through JSON for reuse across sessions.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Iterable, Tuple

import numpy as np

from repro.circuits.sizing_problem import C_LOAD_MAX
from repro.core.results import OptimizationResult
from repro.utils.pareto import pareto_mask


class DesignSurface:
    """A power-vs-load design surface with the sizings that realize it.

    Internally stores the feasible non-dominated set sorted by load
    capacitance.  All capacitances/powers are SI (farads/watts).
    """

    def __init__(
        self,
        x: np.ndarray,
        c_load: np.ndarray,
        power: np.ndarray,
        c_load_max: float = C_LOAD_MAX,
    ) -> None:
        x = np.atleast_2d(np.asarray(x, dtype=float))
        c_load = np.asarray(c_load, dtype=float).ravel()
        power = np.asarray(power, dtype=float).ravel()
        if not (x.shape[0] == c_load.size == power.size):
            raise ValueError(
                f"inconsistent surface sizes: x={x.shape[0]}, "
                f"c_load={c_load.size}, power={power.size}"
            )
        if x.shape[0] == 0:
            raise ValueError("a design surface needs at least one design")
        self.c_load_max = float(c_load_max)
        # Keep only the non-dominated subset in (power, deficit) space.
        objs = np.column_stack([power, self.c_load_max - c_load])
        keep = pareto_mask(objs)
        order = np.argsort(c_load[keep], kind="stable")
        idx = np.flatnonzero(keep)[order]
        self._x = x[idx]
        self._c_load = c_load[idx]
        self._power = power[idx]

    # ------------------------------------------------------------ factories

    @classmethod
    def from_results(
        cls,
        results: Iterable[OptimizationResult],
        c_load_max: float = C_LOAD_MAX,
    ) -> "DesignSurface":
        """Merge the fronts of one or more runs into a single surface."""
        xs, cs, ps = [], [], []
        for result in results:
            front = result.front_objectives
            if front.shape[0] == 0:
                continue
            xs.append(result.front_x)
            cs.append(c_load_max - front[:, 1])
            ps.append(front[:, 0])
        if not xs:
            raise ValueError("no feasible designs in any of the results")
        return cls(
            np.vstack(xs),
            np.concatenate(cs),
            np.concatenate(ps),
            c_load_max=c_load_max,
        )

    @classmethod
    def from_result(
        cls, result: OptimizationResult, c_load_max: float = C_LOAD_MAX
    ) -> "DesignSurface":
        return cls.from_results([result], c_load_max=c_load_max)

    # ------------------------------------------------------------- queries

    @property
    def size(self) -> int:
        return self._c_load.size

    def __len__(self) -> int:
        return self.size

    @property
    def c_load(self) -> np.ndarray:
        return self._c_load.copy()

    @property
    def power(self) -> np.ndarray:
        return self._power.copy()

    @property
    def x(self) -> np.ndarray:
        return self._x.copy()

    @property
    def load_range(self) -> Tuple[float, float]:
        return float(self._c_load[0]), float(self._c_load[-1])

    def design_for(self, c_load: float) -> Tuple[np.ndarray, float, float]:
        """Cheapest stored design able to drive *c_load*.

        Returns ``(x, actual_c_load, power)``.  Asking beyond the
        strongest stored design raises (the surface cannot promise it).
        """
        capable = np.flatnonzero(self._c_load >= c_load)
        if capable.size == 0:
            raise ValueError(
                f"no stored design drives {c_load * 1e12:.2f} pF "
                f"(surface tops out at {self._c_load[-1] * 1e12:.2f} pF)"
            )
        # Surface is sorted by c_load and non-dominated, so among capable
        # designs the first (smallest load) has the lowest power.
        i = int(capable[0])
        return self._x[i].copy(), float(self._c_load[i]), float(self._power[i])

    def power_at(self, c_load) -> np.ndarray:
        """Interpolated minimum power to drive *c_load* (vectorized).

        Piecewise-linear in the stored points; queries below the weakest
        stored design return its power (driving less never costs more);
        queries above the strongest return ``nan``.
        """
        q = np.asarray(c_load, dtype=float)
        out = np.interp(q, self._c_load, self._power)
        out = np.where(q > self._c_load[-1], np.nan, out)
        return out

    # ----------------------------------------------------------------- io

    def to_dict(self) -> dict:
        return {
            "c_load_max": self.c_load_max,
            "x": self._x.tolist(),
            "c_load": self._c_load.tolist(),
            "power": self._power.tolist(),
        }

    def save(self, path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2))
        return path

    @classmethod
    def load(cls, path) -> "DesignSurface":
        payload = json.loads(Path(path).read_text())
        return cls(
            np.asarray(payload["x"], dtype=float),
            np.asarray(payload["c_load"], dtype=float),
            np.asarray(payload["power"], dtype=float),
            c_load_max=float(payload["c_load_max"]),
        )

    def merged_with(self, other: "DesignSurface") -> "DesignSurface":
        """Non-dominated union of two surfaces (same load convention).

        ``c_load_max`` is compared with :func:`math.isclose` so a surface
        that went through a JSON round trip (float -> repr -> float, or a
        serializer that trimmed digits) still merges with its original.
        """
        if not math.isclose(
            other.c_load_max, self.c_load_max, rel_tol=1e-9, abs_tol=0.0
        ):
            raise ValueError("cannot merge surfaces with different load ranges")
        return DesignSurface(
            np.vstack([self._x, other._x]),
            np.concatenate([self._c_load, other._c_load]),
            np.concatenate([self._power, other._power]),
            c_load_max=self.c_load_max,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lo, hi = self.load_range
        return (
            f"DesignSurface(size={self.size}, "
            f"load {lo * 1e12:.2f}-{hi * 1e12:.2f} pF, "
            f"power {self._power.min() * 1e3:.3f}-{self._power.max() * 1e3:.3f} mW)"
        )
