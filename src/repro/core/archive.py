"""Bounded elitist archive of feasible non-dominated solutions.

The paper extracts its final front with "Global Competition ... once on
the entire population".  An external archive strengthens that: it
accumulates every feasible non-dominated design seen during the run, so
the reported design surface cannot lose points to late-run population
churn.  The archive is bounded; when full it prunes by crowding distance
(keeping the extremes), the same density measure NSGA-II truncates with.

Usage::

    archive = ParetoArchive(capacity=300)
    algorithm.add_callback(archive.observe)
    result = algorithm.run(800)
    archive.objectives   # the accumulated design surface
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.core.individual import Population
from repro.core.nds import crowding_distance
from repro.utils.pareto import pareto_mask
from repro.utils.validation import check_positive


class ParetoArchive:
    """Feasible non-dominated archive with crowding-based pruning.

    Parameters
    ----------
    capacity:
        Maximum number of stored solutions; ``None`` = unbounded.
    n_var, n_obj:
        Optional column dimensions, so that :meth:`contents` of an
        archive that never received a point still returns correctly
        shaped ``(0, n_var)`` / ``(0, n_obj)`` arrays (downstream
        ``vstack`` works).  When omitted, the dimensions are remembered
        from the first :meth:`add` and survive :meth:`clear`.
    """

    def __init__(
        self,
        capacity: Optional[int] = 300,
        n_var: Optional[int] = None,
        n_obj: Optional[int] = None,
    ) -> None:
        if capacity is not None:
            check_positive("capacity", capacity)
        if n_var is not None:
            check_positive("n_var", n_var)
        if n_obj is not None:
            check_positive("n_obj", n_obj)
        self.capacity = capacity
        self.n_var = n_var
        self.n_obj = n_obj
        self._x: Optional[np.ndarray] = None
        self._f: Optional[np.ndarray] = None
        self.n_observed = 0

    # ------------------------------------------------------------- protocol

    @property
    def size(self) -> int:
        return 0 if self._f is None else self._f.shape[0]

    def __len__(self) -> int:
        return self.size

    @property
    def x(self) -> np.ndarray:
        if self._x is None:
            raise ValueError("archive is empty")
        return self._x.copy()

    @property
    def objectives(self) -> np.ndarray:
        if self._f is None:
            raise ValueError("archive is empty")
        return self._f.copy()

    def contents(self) -> Tuple[np.ndarray, np.ndarray]:
        """(x, objectives) of the current archive.

        An empty archive returns ``(0, n_var)`` / ``(0, n_obj)`` arrays
        when the dimensions are known (from ``__init__`` or a previous
        :meth:`add`), so callers can ``vstack`` without special-casing.
        """
        if self._f is None:
            return (
                np.zeros((0, self.n_var or 0)),
                np.zeros((0, self.n_obj or 0)),
            )
        return self._x.copy(), self._f.copy()

    # ------------------------------------------------------------- updates

    def add(self, x: np.ndarray, objectives: np.ndarray) -> int:
        """Merge a batch of *feasible* candidates; returns archive size.

        Only the joint non-dominated subset survives; if it exceeds the
        capacity the densest members are pruned.
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        f = np.atleast_2d(np.asarray(objectives, dtype=float))
        if x.shape[0] != f.shape[0]:
            raise ValueError(
                f"x has {x.shape[0]} rows but objectives has {f.shape[0]}"
            )
        if x.shape[0] == 0:
            return self.size
        if self.n_var is not None and x.shape[1] != self.n_var:
            raise ValueError(
                f"dimension mismatch with archived solutions: x has "
                f"{x.shape[1]} columns, archive expects {self.n_var}"
            )
        if self.n_obj is not None and f.shape[1] != self.n_obj:
            raise ValueError(
                f"dimension mismatch with archived solutions: objectives "
                f"has {f.shape[1]} columns, archive expects {self.n_obj}"
            )
        self.n_var, self.n_obj = x.shape[1], f.shape[1]
        self.n_observed += x.shape[0]
        if self._f is None:
            all_x, all_f = x, f
        else:
            if f.shape[1] != self._f.shape[1] or x.shape[1] != self._x.shape[1]:
                raise ValueError("dimension mismatch with archived solutions")
            all_x = np.vstack([self._x, x])
            all_f = np.vstack([self._f, f])
        keep = pareto_mask(all_f)
        all_x, all_f = all_x[keep], all_f[keep]
        all_x, all_f = _drop_duplicates(all_x, all_f)
        if self.capacity is not None and all_f.shape[0] > self.capacity:
            dist = crowding_distance(all_f)
            order = np.argsort(-dist, kind="stable")[: self.capacity]
            all_x, all_f = all_x[order], all_f[order]
        self._x, self._f = all_x, all_f
        return self.size

    def observe(self, generation: int, population: Population) -> None:
        """Per-generation callback: feed the feasible members in."""
        feas = np.flatnonzero(population.feasible)
        if feas.size:
            self.add(population.x[feas], population.objectives[feas])

    def clear(self) -> None:
        """Drop all stored solutions (remembered dimensions survive)."""
        self._x = None
        self._f = None
        self.n_observed = 0

    def stats(self) -> Dict[str, Any]:
        """Observability snapshot (what the telemetry layer samples)."""
        return {
            "size": self.size,
            "capacity": self.capacity,
            "n_observed": int(self.n_observed),
        }

    # -------------------------------------------------------- checkpointing

    def state_dict(self) -> Dict[str, Any]:
        """Picklable snapshot, e.g. for ``CheckpointCallback(extra_state=
        {"archive": archive.state_dict})``."""
        x, f = self.contents()
        return {
            "x": x,
            "objectives": f,
            "n_observed": self.n_observed,
            "capacity": self.capacity,
            "n_var": self.n_var,
            "n_obj": self.n_obj,
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore a snapshot taken by :meth:`state_dict`."""
        self.capacity = state["capacity"]
        self.n_var = state["n_var"]
        self.n_obj = state["n_obj"]
        x = np.asarray(state["x"], dtype=float)
        f = np.asarray(state["objectives"], dtype=float)
        if x.shape[0] == 0:
            self._x = None
            self._f = None
        else:
            self._x = x.copy()
            self._f = f.copy()
        self.n_observed = int(state["n_observed"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParetoArchive(size={self.size}, capacity={self.capacity})"


def _drop_duplicates(x: np.ndarray, f: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Remove exact decision-vector duplicates (keep first occurrence)."""
    if x.shape[0] <= 1:
        return x, f
    _, idx = np.unique(x, axis=0, return_index=True)
    idx = np.sort(idx)
    return x[idx], f[idx]
