"""Run records: per-generation history and final optimization results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

import numpy as np

from repro.core.individual import Population


@dataclass
class GenerationRecord:
    """Snapshot of one generation.

    Attributes
    ----------
    generation:
        Zero-based generation counter (0 = initial population).
    n_feasible:
        Number of feasible members.
    front_objectives:
        Objectives of the current global non-dominated feasible set
        (``(k, n_obj)``); empty when nothing is feasible yet.
    n_evaluations:
        Cumulative problem evaluations at snapshot time.
    extras:
        Algorithm-specific scalars (e.g. annealing temperature, live
        partition count, mean global-participation probability).
    """

    generation: int
    n_feasible: int
    front_objectives: np.ndarray
    n_evaluations: int
    extras: Dict[str, float] = field(default_factory=dict)


@dataclass
class OptimizationResult:
    """Outcome of one algorithm run.

    Attributes
    ----------
    algorithm:
        Human-readable algorithm label ("NSGA-II", "SACGA", "MESACGA").
    problem_name:
        The problem's ``name``.
    population:
        Final population.
    front_x / front_objectives:
        The final (feasible, constraint-aware) Pareto set and front.
    n_generations:
        Number of generations executed.
    n_evaluations:
        Total design-point evaluations consumed.
    wall_time:
        Seconds of wall-clock time in the main loop.
    history:
        Per-generation snapshots (possibly thinned, see HistoryRecorder).
    metadata:
        Free-form configuration echo (population size, partition counts,
        annealing parameters, seed) for provenance.
    """

    algorithm: str
    problem_name: str
    population: Population
    front_x: np.ndarray
    front_objectives: np.ndarray
    n_generations: int
    n_evaluations: int
    wall_time: float
    history: List[GenerationRecord] = field(default_factory=list)
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def front_size(self) -> int:
        return int(self.front_objectives.shape[0])

    def feasible_front(self) -> np.ndarray:
        """Alias kept for API clarity — the stored front is feasible-only."""
        return self.front_objectives

    def summary(self) -> Dict[str, Any]:
        """Compact scalar summary used by reports and serialization."""
        return {
            "algorithm": self.algorithm,
            "problem": self.problem_name,
            "front_size": self.front_size,
            "n_generations": self.n_generations,
            "n_evaluations": self.n_evaluations,
            "wall_time_s": round(self.wall_time, 4),
        }


def extract_feasible_front(population: Population) -> "tuple[np.ndarray, np.ndarray]":
    """Decision vectors and objectives of the feasible non-dominated set.

    Returns empty arrays (with correct trailing dimensions) when the
    population holds no feasible member.
    """
    feas = np.flatnonzero(population.feasible)
    if feas.size == 0:
        return (
            np.zeros((0, population.n_var)),
            np.zeros((0, population.n_obj)),
        )
    sub = population.subset(feas)
    idx = sub.pareto_front_indices()
    return sub.x[idx].copy(), sub.objectives[idx].copy()
