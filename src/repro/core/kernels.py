"""Vectorized dominance/selection kernels for the GA hot paths.

Every generation of NSGA-II, SACGA and MESACGA is dominated by three
operations: non-dominated sorting of the merged parent+offspring pool,
per-partition local ranking, and crowded environmental truncation.  The
historical implementations (kept here verbatim as the ``"reference"``
kernel — the oracle) run a Python loop per population row or per
partition; the ``"blocked"`` kernel replaces them with full-matrix
broadcast comparisons evaluated in row blocks:

* :func:`nds_fronts_blocked` — Deb's fast non-dominated sort built from
  a blocked ``(B, N, M)`` dominance comparison.  The full ``(N, N)``
  boolean dominance matrix is materialized (2.5 MB at N = 1600); the
  block size only bounds the *comparison* temporaries.
* :func:`nds_fronts_sweep` — for one or two objectives (this library's
  problems are all 2-objective) the ``blocked`` kernel instead uses an
  ``O(N log N)`` sweep: in lexicographic objective order, a point's
  front level is found by binary search over the per-front minimum of
  the second objective (a patience-sorting argument).  The quadratic
  matrix — whose cost the reference loop matches element-for-element at
  large N, capping its speedup — is skipped entirely.
* :func:`local_rank_and_crowd` — ranks **all** partitions in one pass.
  For two objectives a single partition-major lexsort lines every
  partition up as a contiguous segment and one sweep with per-segment
  resets assigns every local front level; for three or more, the
  partition id is appended to the objectives as a ``(+pid, -pid)``
  column pair, which makes members of different partitions mutually
  non-dominating, so a single global sort yields every partition's local
  front levels at once.  Crowding is then computed for every
  (partition, front) group simultaneously by :func:`_segmented_crowding`.
* :func:`truncate_and_rank` — NSGA-II environmental selection that sorts
  the merged pool **once**: survivors of complete fronts provably keep
  their front level after truncation (every front-``L`` member has a
  dominator in front ``L-1``, which is always kept), so the second sort
  the reference path runs on the survivor subset is redundant and is
  replaced by a segment-batched crowding pass.

Semantics contract: for identical inputs both kernels return
*bit-identical* outputs — fronts, ranks **and** crowding floats (the
segmented crowding applies the same IEEE operations in the same
per-objective order as :func:`crowding_distance`).  This is locked in by
``tests/core/test_kernels.py``, the brute-force oracle in
``tests/core/test_nds_oracle.py`` and the byte-level serialization
equivalence in ``tests/core/test_determinism_regression.py``.

The active kernel is chosen per call (``kernel="blocked"|"reference"``),
per optimizer (``kernel=`` constructor kwarg) or globally
(:func:`set_default_kernel` / ``REPRO_KERNEL`` environment variable).
``benchmarks/perf/bench_kernels.py`` tracks the speedups in
``BENCH_kernels.json`` at the repo root.
"""

from __future__ import annotations

import os
from bisect import bisect_right
from typing import List, Optional, Tuple

import numpy as np

__all__ = [
    "KERNEL_NAMES",
    "get_default_kernel",
    "set_default_kernel",
    "resolve_kernel",
    "get_block_size",
    "set_block_size",
    "crowding_distance",
    "nds_fronts_reference",
    "nds_fronts_blocked",
    "nds_fronts_sweep",
    "constrained_fronts",
    "rank_and_crowd",
    "local_rank_and_crowd",
    "truncate_and_rank",
    "crowded_compare",
    "kernel_call_counts",
    "reset_kernel_call_counts",
]

#: Kernel implementations selectable throughout the library.
KERNEL_NAMES = ("blocked", "reference")

_DEFAULT_BLOCK_SIZE = 256

_default_kernel = os.environ.get("REPRO_KERNEL", "blocked").strip().lower()
_block_size = int(os.environ.get("REPRO_KERNEL_BLOCK", _DEFAULT_BLOCK_SIZE))


def get_default_kernel() -> str:
    """The kernel used when a call site passes ``kernel=None``."""
    return _default_kernel


def set_default_kernel(name: str) -> None:
    """Set the process-wide default kernel (``"blocked"`` or ``"reference"``)."""
    global _default_kernel
    _default_kernel = resolve_kernel(name)


def resolve_kernel(name: Optional[str] = None) -> str:
    """Validate *name*, mapping ``None`` to the process default."""
    key = _default_kernel if name is None else str(name).strip().lower()
    if key not in KERNEL_NAMES:
        raise KeyError(
            f"unknown kernel {name!r} (want one of {', '.join(KERNEL_NAMES)})"
        )
    return key


def get_block_size() -> int:
    """Row-block size bounding the blocked kernel's comparison temporaries."""
    return _block_size


def set_block_size(size: int) -> None:
    """Set the blocked kernel's row-block size (memory/speed trade-off)."""
    global _block_size
    if size < 1:
        raise ValueError(f"block size must be >= 1, got {size}")
    _block_size = int(size)


# Process-wide dispatch counters, keyed "function/kernel".  A plain dict
# bump per *public* dispatch call (nested dispatches count too:
# rank_and_crowd includes its inner constrained_fronts) — cheap enough to
# be unconditional, and the telemetry layer exports per-generation deltas.
_CALL_COUNTS: "dict[str, int]" = {}


def _count_call(fn: str, kern: str) -> None:
    key = f"{fn}/{kern}"
    _CALL_COUNTS[key] = _CALL_COUNTS.get(key, 0) + 1


def kernel_call_counts() -> "dict[str, int]":
    """Snapshot of cumulative kernel dispatch counts (``{"fn/kernel": n}``)."""
    return dict(_CALL_COUNTS)


def reset_kernel_call_counts() -> None:
    """Zero the process-wide kernel dispatch counters."""
    _CALL_COUNTS.clear()


# --------------------------------------------------------------- crowding


def crowding_distance(objectives: np.ndarray) -> np.ndarray:
    """Crowding distance of each point within one front.

    Boundary points of every objective get ``inf``.  Objectives with zero
    range contribute nothing.  Empty and singleton inputs are handled
    (singleton gets ``inf``).
    """
    objs = np.atleast_2d(np.asarray(objectives, dtype=float))
    n, m = objs.shape
    if n == 0:
        return np.zeros(0)
    if n <= 2:
        return np.full(n, np.inf)
    distance = np.zeros(n)
    for j in range(m):
        order = np.argsort(objs[:, j], kind="stable")
        col = objs[order, j]
        span = col[-1] - col[0]
        distance[order[0]] = np.inf
        distance[order[-1]] = np.inf
        if span <= 0:
            continue
        gaps = (col[2:] - col[:-2]) / span
        inner = order[1:-1]
        finite = ~np.isinf(distance[inner])
        distance[inner[finite]] += gaps[finite]
    return distance


def _segmented_crowding(objs: np.ndarray, new_seg: np.ndarray) -> np.ndarray:
    """Crowding distance over many contiguous row segments in one pass.

    *objs* rows must be grouped so that each front is a contiguous
    segment; ``new_seg[i]`` is True where row *i* starts a segment.
    Returns the distance per row, bit-identical per segment to
    :func:`crowding_distance` applied to the same rows in the same order
    (same stable sort, same per-objective accumulation order, same IEEE
    operations on the same operands).
    """
    objs = np.atleast_2d(np.asarray(objs, dtype=float))
    n, m = objs.shape
    dist = np.zeros(n)
    if n == 0:
        return dist
    seg_ord = np.cumsum(new_seg) - 1
    starts = np.flatnonzero(new_seg)
    ends = np.append(starts[1:], n)
    sizes = ends - starts
    size_row = sizes[seg_ord]
    start_row = starts[seg_ord]
    small = size_row <= 2
    dist[small] = np.inf
    if small.all():
        return dist
    positions = np.arange(n)
    for j in range(m):
        col = objs[:, j]
        # Primary key: segment; secondary: objective value; ties keep the
        # in-segment row order — exactly argsort(col, kind="stable") run
        # independently inside every segment.  Because the primary key is
        # the (sorted) segment ordinal, each segment occupies its original
        # [start, end) slice of the sorted arrangement.
        order = np.lexsort((col, seg_ord))
        scol = col[order]
        seg_sorted = seg_ord[order]
        within = positions - start_row[order]
        big = ~small[order]
        first = (within == 0) & big
        last = (within == size_row[order] - 1) & big
        dist[order[first]] = np.inf
        dist[order[last]] = np.inf
        span = scol[ends - 1] - scol[starts]
        interior = big & (within > 0) & (within < size_row[order] - 1)
        ip = np.flatnonzero(interior)
        if ip.size == 0:
            continue
        ip = ip[span[seg_sorted[ip]] > 0]
        if ip.size == 0:
            continue
        rows = order[ip]
        gaps = (scol[ip + 1] - scol[ip - 1]) / span[seg_sorted[ip]]
        finite = ~np.isinf(dist[rows])
        dist[rows[finite]] += gaps[finite]
    return dist


# ------------------------------------------------------ dominance sorting


def nds_fronts_reference(objs: np.ndarray) -> List[np.ndarray]:
    """Deb's fast non-dominated sort, one Python-loop row at a time.

    This is the historical implementation, kept as the semantics oracle
    for the blocked kernel.
    """
    n = objs.shape[0]
    domination_count = np.zeros(n, dtype=int)
    dominated_by: List[np.ndarray] = [np.zeros(0, dtype=int)] * n
    for i in range(n):
        le = np.all(objs[i] <= objs, axis=1)
        lt = np.any(objs[i] < objs, axis=1)
        dom = le & lt  # i dominates these
        dom[i] = False
        dominated_by[i] = np.flatnonzero(dom)
        domination_count[dom] += 1

    fronts: List[np.ndarray] = []
    current = np.flatnonzero(domination_count == 0)
    remaining = domination_count.copy()
    while current.size:
        fronts.append(current)
        # Mark processed so they never reappear.
        remaining[current] = -1
        for i in current:
            remaining[dominated_by[i]] -= 1
        current = np.flatnonzero(remaining == 0)
    return fronts


def nds_fronts_blocked(
    objs: np.ndarray, block_size: Optional[int] = None
) -> List[np.ndarray]:
    """Deb's fast non-dominated sort via a blocked dominance matrix.

    Computes the full ``(N, N)`` boolean matrix ``dom[i, j] = i dominates
    j`` with broadcast ``(B, N, M)`` comparisons (*block_size* rows at a
    time), then peels fronts with whole-array updates.  Front contents
    and order are identical to :func:`nds_fronts_reference`.
    """
    n = objs.shape[0]
    if n == 0:
        return []
    bs = block_size if block_size is not None else get_block_size()
    dom = np.empty((n, n), dtype=bool)
    for s in range(0, n, bs):
        e = min(s + bs, n)
        blk = objs[s:e, None, :]
        le = (blk <= objs[None, :, :]).all(axis=2)
        lt = (blk < objs[None, :, :]).any(axis=2)
        np.logical_and(le, lt, out=dom[s:e])
    remaining = dom.sum(axis=0).astype(int)  # dominator count per column
    fronts: List[np.ndarray] = []
    current = np.flatnonzero(remaining == 0)
    while current.size:
        fronts.append(current)
        # Front members are mutually non-dominating, so the decrement is
        # zero on `current` and the -1 marker survives exactly as in the
        # reference peel.
        decrement = dom[current].sum(axis=0)
        remaining[current] = -1
        remaining -= decrement
        current = np.flatnonzero(remaining == 0)
    return fronts


def _sweep_levels(f1: list, f2: list, reset: list) -> list:
    """Front level per row of a lexicographically pre-sorted 2-objective
    block, one or more independent segments.

    Rows must be sorted by ``(segment, f1, f2)``; ``reset[i]`` is True
    where a new segment starts.  ``mins[k]`` holds the minimum ``f2``
    seen so far in front *k* of the current segment — a nondecreasing
    list, because a point is placed in the first front whose minimum
    exceeds its own ``f2``.  For a first-occurrence point *p*, front *j*
    contains a dominator of *p* exactly when ``mins[j] <= p.f2`` (the
    minimizing point precedes *p* lexicographically and differs from it,
    hence dominates), so *p*'s peel depth is the insertion index found by
    binary search.  Exact duplicates are adjacent after the sort and
    share the first occurrence's level.
    """
    levels = [0] * len(f1)
    mins: list = []
    prev_a = prev_b = None
    prev_level = 0
    for i, a in enumerate(f1):
        if reset[i]:
            mins = []
            prev_a = None
        b = f2[i]
        if a == prev_a and b == prev_b:
            k = prev_level
        else:
            k = bisect_right(mins, b)
            if k == len(mins):
                mins.append(b)
            else:
                mins[k] = b
            prev_a, prev_b, prev_level = a, b, k
        levels[i] = k
    return levels


def nds_fronts_sweep(objs: np.ndarray) -> List[np.ndarray]:
    """Non-dominated sort for one or two objectives in ``O(N log N)``.

    Used by the ``blocked`` kernel whenever ``M <= 2`` (always, for this
    library's problems): front levels come from :func:`_sweep_levels`
    instead of the quadratic dominance matrix.  Front contents and order
    are identical to :func:`nds_fronts_reference` — peel depth is a
    property of the dominance relation, not of the algorithm, and
    members are emitted in ascending original index.
    """
    n, m = objs.shape
    if n == 0:
        return []
    if m > 2:
        raise ValueError(f"sweep kernel handles at most 2 objectives, got {m}")
    f2col = objs[:, 1] if m == 2 else np.zeros(n)
    order = np.lexsort((f2col, objs[:, 0]))
    reset = [True] + [False] * (n - 1)
    lev_sorted = _sweep_levels(
        objs[order, 0].tolist(), f2col[order].tolist(), reset
    )
    levels = np.empty(n, dtype=np.intp)
    levels[order] = lev_sorted
    by_level = np.argsort(levels, kind="stable")  # ascending index per level
    bounds = np.cumsum(np.bincount(levels))[:-1]
    return list(np.split(by_level, bounds))


def _unconstrained_fronts(
    objs: np.ndarray, kernel: str, block_size: Optional[int] = None
) -> List[np.ndarray]:
    if kernel == "blocked":
        if objs.shape[1] <= 2:
            return nds_fronts_sweep(objs)
        return nds_fronts_blocked(objs, block_size)
    return nds_fronts_reference(objs)


def constrained_fronts(
    objectives: np.ndarray,
    violations: Optional[np.ndarray] = None,
    kernel: Optional[str] = None,
    block_size: Optional[int] = None,
) -> List[np.ndarray]:
    """Constrained-dominance Pareto fronts (feasible first, then
    infeasible layered by aggregate violation).

    This is the kernel-dispatching core of
    :func:`repro.core.nds.fast_non_dominated_sort`; see there for the
    full semantics description.
    """
    kern = resolve_kernel(kernel)
    _count_call("constrained_fronts", kern)
    objs = np.atleast_2d(np.asarray(objectives, dtype=float))
    n = objs.shape[0]
    if n == 0:
        return []
    if violations is None:
        violations = np.zeros(n)
    violations = np.asarray(violations, dtype=float).reshape(n)
    feasible = violations <= 0.0

    fronts: List[np.ndarray] = []
    feas_idx = np.flatnonzero(feasible)
    if feas_idx.size:
        for front in _unconstrained_fronts(objs[feas_idx], kern, block_size):
            fronts.append(feas_idx[front])

    infeas_idx = np.flatnonzero(~feasible)
    if infeas_idx.size:
        v = violations[infeas_idx]
        order = np.argsort(v, kind="stable")
        sorted_idx = infeas_idx[order]
        sorted_v = v[order]
        # Group ties in violation into a single front.
        start = 0
        for i in range(1, sorted_idx.size + 1):
            if i == sorted_idx.size or sorted_v[i] > sorted_v[start]:
                fronts.append(sorted_idx[start:i])
                start = i
    return fronts


# --------------------------------------------------- rank + crowd kernels


def rank_and_crowd(
    objectives: np.ndarray,
    violations: Optional[np.ndarray] = None,
    kernel: Optional[str] = None,
    block_size: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Global constrained front level and per-front crowding per point.

    Equivalent to running the constrained sort and then
    :func:`crowding_distance` front by front; the blocked kernel batches
    the crowding over all fronts with one segmented pass.
    """
    kern = resolve_kernel(kernel)
    _count_call("rank_and_crowd", kern)
    objs = np.atleast_2d(np.asarray(objectives, dtype=float))
    n = objs.shape[0]
    rank = np.zeros(n, dtype=int)
    crowd = np.zeros(n, dtype=float)
    if n == 0:
        return rank, crowd
    fronts = constrained_fronts(objs, violations, kernel=kern, block_size=block_size)
    if kern == "reference":
        for level, front in enumerate(fronts):
            rank[front] = level
            crowd[front] = crowding_distance(objs[front])
        return rank, crowd
    for level, front in enumerate(fronts):
        rank[front] = level
    order = np.lexsort((rank,))  # stable: fronts contiguous, rows ascending
    new_seg = np.ones(n, dtype=bool)
    new_seg[1:] = rank[order][1:] != rank[order][:-1]
    crowd[order] = _segmented_crowding(objs[order], new_seg)
    return rank, crowd


def local_rank_and_crowd(
    objectives: np.ndarray,
    violations: np.ndarray,
    partition: np.ndarray,
    n_partitions: int,
    kernel: Optional[str] = None,
    block_size: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-partition constrained front level and crowding, all partitions
    in one pass.

    Mirrors ``PartitionedPopulation._rank_locally``: within every
    partition, feasible members are layered by objective dominance and
    infeasible members follow in groups of equal aggregate violation;
    crowding is computed inside each (partition, level) group.

    For one or two objectives the blocked kernel sorts the feasible rows
    partition-major (one lexsort) and runs a single
    :func:`_sweep_levels` pass with a reset at every partition boundary
    — each partition is a contiguous segment, so one ``O(N log N)``
    sweep assigns every local front level at once.  For three or more
    objectives it appends a ``(+pid, -pid)`` column pair to the
    objectives, which makes rows of different partitions mutually
    non-dominating (each is strictly smaller than the other on one of
    the two columns), so one global non-dominated sort peels every
    partition's local fronts simultaneously: a row's global peel depth
    equals its depth within its own partition because dominance edges
    never cross partitions.
    """
    kern = resolve_kernel(kernel)
    _count_call("local_rank_and_crowd", kern)
    objs = np.atleast_2d(np.asarray(objectives, dtype=float))
    n = objs.shape[0]
    rank = np.zeros(n, dtype=int)
    crowd = np.zeros(n, dtype=float)
    if n == 0:
        return rank, crowd
    viol = np.asarray(violations, dtype=float).reshape(n)
    pid = np.asarray(partition, dtype=int).reshape(n)

    if kern == "reference":
        for p in range(n_partitions):
            members = np.flatnonzero(pid == p)
            if members.size == 0:
                continue
            fronts = constrained_fronts(
                objs[members], viol[members], kernel="reference"
            )
            for level, front in enumerate(fronts):
                idx = members[front]
                rank[idx] = level
                crowd[idx] = crowding_distance(objs[idx])
        return rank, crowd

    feasible = viol <= 0.0
    feas_idx = np.flatnonzero(feasible)
    n_feas_fronts = np.zeros(n_partitions, dtype=int)
    if feas_idx.size:
        if objs.shape[1] <= 2:
            fobjs = objs[feas_idx]
            fpid = pid[feas_idx]
            f1 = fobjs[:, 0]
            f2 = fobjs[:, 1] if objs.shape[1] == 2 else np.zeros(f1.size)
            order = np.lexsort((f2, f1, fpid))  # partition-major segments
            ps = fpid[order]
            reset = np.ones(order.size, dtype=bool)
            reset[1:] = ps[1:] != ps[:-1]
            rank[feas_idx[order]] = _sweep_levels(
                f1[order].tolist(), f2[order].tolist(), reset.tolist()
            )
        else:
            fpid = pid[feas_idx].astype(float)
            aug = np.concatenate(
                [objs[feas_idx], fpid[:, None], -fpid[:, None]], axis=1
            )
            for level, front in enumerate(nds_fronts_blocked(aug, block_size)):
                rank[feas_idx[front]] = level
        np.maximum.at(n_feas_fronts, pid[feas_idx], rank[feas_idx] + 1)

    infeas_idx = np.flatnonzero(~feasible)
    if infeas_idx.size:
        v = viol[infeas_idx]
        p = pid[infeas_idx]
        order = np.lexsort((v, p))  # partition-major, violation ascending
        ps = p[order]
        vs = v[order]
        new_group = np.ones(order.size, dtype=bool)
        new_group[1:] = (ps[1:] != ps[:-1]) | (vs[1:] > vs[:-1])
        gid = np.cumsum(new_group) - 1
        part_start = np.ones(order.size, dtype=bool)
        part_start[1:] = ps[1:] != ps[:-1]
        # Group index of each partition's first violation group, spread to
        # every row of that partition; subtracting it makes gid local.
        base = gid[part_start][np.cumsum(part_start) - 1]
        rank[infeas_idx[order]] = n_feas_fronts[ps] + gid - base

    # One segmented crowding pass over every (partition, level) group;
    # ties keep ascending row order, matching the reference loop.
    order = np.lexsort((rank, pid))
    new_seg = np.ones(n, dtype=bool)
    new_seg[1:] = (pid[order][1:] != pid[order][:-1]) | (
        rank[order][1:] != rank[order][:-1]
    )
    crowd[order] = _segmented_crowding(objs[order], new_seg)
    return rank, crowd


# ------------------------------------------------- environmental selection


def truncate_and_rank(
    objectives: np.ndarray,
    violations: Optional[np.ndarray],
    k: int,
    kernel: Optional[str] = None,
    block_size: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """NSGA-II environmental selection fused with survivor re-ranking.

    Returns ``(keep, rank, crowding)``: the *k* selected indices in
    rank-major order (the overflowing front truncated by descending
    crowding distance, exactly as ``crowded_truncate``), plus the front
    level and crowding each survivor would get from re-sorting the
    selected subset.

    The reference path runs the historical two full sorts (truncate,
    then re-rank the subset).  The blocked path sorts **once**: complete
    surviving fronts keep their levels (each front-``L`` member has a
    dominator in front ``L-1``, all of which survive, so peel depths are
    unchanged), and only the crowding of the partially-kept front differs
    from the merged-pool values — recomputed for all fronts in one
    segmented pass over the survivors in selection order, which is the
    row order a re-sort of the subset would visit.
    """
    kern = resolve_kernel(kernel)
    _count_call("truncate_and_rank", kern)
    objs = np.atleast_2d(np.asarray(objectives, dtype=float))
    n = objs.shape[0]
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")

    if kern == "reference":
        keep = _truncate_indices(objs, violations, k, "reference", block_size)
        viol = None
        if violations is not None:
            viol = np.asarray(violations, dtype=float).reshape(n)[keep]
        rank, crowd = rank_and_crowd(objs[keep], viol, kernel="reference")
        return keep, rank, crowd

    if k >= n:
        keep = np.arange(n)
        rank, crowd = rank_and_crowd(
            objs, violations, kernel=kern, block_size=block_size
        )
        return keep, rank, crowd

    fronts = constrained_fronts(objs, violations, kernel=kern, block_size=block_size)
    keep_parts: List[np.ndarray] = []
    level_parts: List[np.ndarray] = []
    taken = 0
    for level, front in enumerate(fronts):
        if taken + front.size <= k:
            keep_parts.append(front)
            level_parts.append(np.full(front.size, level, dtype=int))
            taken += front.size
            if taken == k:
                break
        else:
            dist = crowding_distance(objs[front])
            order = np.argsort(-dist, kind="stable")
            part = front[order[: k - taken]]
            keep_parts.append(part)
            level_parts.append(np.full(part.size, level, dtype=int))
            break
    if not keep_parts:
        empty = np.zeros(0, dtype=int)
        return empty, empty.copy(), np.zeros(0, dtype=float)
    keep = np.concatenate(keep_parts)
    rank = np.concatenate(level_parts)
    new_seg = np.ones(keep.size, dtype=bool)
    new_seg[1:] = rank[1:] != rank[:-1]
    crowd = _segmented_crowding(objs[keep], new_seg)
    return keep, rank, crowd


def _truncate_indices(
    objs: np.ndarray,
    violations: Optional[np.ndarray],
    k: int,
    kernel: str,
    block_size: Optional[int] = None,
) -> np.ndarray:
    """``crowded_truncate`` selection (shared by both kernel paths)."""
    n = objs.shape[0]
    if k >= n:
        return np.arange(n)
    chosen: List[np.ndarray] = []
    taken = 0
    for front in constrained_fronts(
        objs, violations, kernel=kernel, block_size=block_size
    ):
        if taken + front.size <= k:
            chosen.append(front)
            taken += front.size
            if taken == k:
                break
        else:
            dist = crowding_distance(objs[front])
            order = np.argsort(-dist, kind="stable")
            chosen.append(front[order[: k - taken]])
            break
    return np.concatenate(chosen) if chosen else np.zeros(0, dtype=int)


# --------------------------------------------------------- mating kernels


def crowded_compare(
    rank_i: np.ndarray,
    crowd_i: np.ndarray,
    rank_j: np.ndarray,
    crowd_j: np.ndarray,
    coin: np.ndarray,
) -> np.ndarray:
    """Vectorized crowded-comparison operator (Deb's ``<_c``).

    Returns a boolean mask picking *i* over *j*: lower rank wins, equal
    ranks are broken by larger crowding distance, exact ties fall back to
    the caller-supplied *coin* mask.
    """
    better_rank = rank_i < rank_j
    worse_rank = rank_i > rank_j
    tie = ~(better_rank | worse_rank)
    more_crowded = crowd_i > crowd_j
    less_crowded = crowd_i < crowd_j
    return better_rank | (tie & more_crowded) | (
        tie & ~more_crowded & ~less_crowded & coin
    )
