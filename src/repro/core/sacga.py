"""SACGA — Simulated Annealing driven Competition in Genetic Algorithm.

The paper's core algorithm (Section 4.4, flow in Fig. 3).  Two phases:

Phase I — *pure local competition*: the objective space is partitioned
along one objective; non-dominated ranking happens only within each
partition.  The phase ends when every partition holds at least one
constraint-satisfying solution, or after ``phase1_max_iterations``, after
which partitions still lacking feasible members are discarded (they lie
in the infeasible region of the objective space).

Phase II — *SA-mixed competition* for ``span`` iterations: each
iteration, every live partition's locally superior solutions are
considered in random order and exposed to global competition with the
annealing-gated probability of eqns (2)-(4).  Exposed candidates are
re-ranked by a global non-dominated sort over all exposed candidates
("rank revision"); unexposed solutions keep their local rank, protecting
weak-but-diverse regions.  The Global Mating Pool is then drawn from the
*entire* population by rank-based selection, offspring are created by
global crossover + mutation, and each partition performs local
environmental selection.

At the end, one global competition over the final population yields the
Global Pareto Front (this is what :class:`OptimizationResult` stores).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.annealing import CompetitionGate, shape_parameters
from repro.core.base_optimizer import BaseOptimizer
from repro.core.individual import Population
from repro.core.nds import assign_ranks
from repro.core.operators import variation
from repro.core.partitions import PartitionGrid, PartitionedPopulation
from repro.core.selection import (
    binary_tournament,
    linear_rank_selection,
    shuffle_for_mating,
)
from repro.problems.base import Problem
from repro.utils.rng import RngLike


@dataclass
class SACGAConfig:
    """Tunable knobs of SACGA beyond the generic GA settings.

    Attributes
    ----------
    n_per_partition:
        ``n`` of eqn (2) — desired number of globally superior solutions
        per partition at the end of Phase II.
    phase1_max_iterations:
        Upper limit on Phase-I iterations (after which infeasible
        partitions are discarded).
    p_mid_first, p_mid_last, p_end:
        Anchor probabilities for :func:`shape_parameters`.
    selection_pressure:
        Linear-ranking pressure of the Global Mating Pool.
    demote_dominated:
        Whether globally dominated participants have their rank demoted
        (the paper's "rank revision"); disabling this is an ablation.
    mating_selection:
        ``"linear_rank"`` (the paper's rank-based Global Mating Pool) or
        ``"tournament"`` (crowded binary tournament — an ablation that
        replaces the paper's choice with NSGA-II's).
    """

    n_per_partition: int = 5
    phase1_max_iterations: int = 100
    p_mid_first: float = 0.5
    p_mid_last: float = 0.1
    p_end: float = 0.95
    selection_pressure: float = 1.8
    demote_dominated: bool = True
    mating_selection: str = "linear_rank"

    def __post_init__(self) -> None:
        if self.mating_selection not in ("linear_rank", "tournament"):
            raise ValueError(
                f"mating_selection must be 'linear_rank' or 'tournament', "
                f"got {self.mating_selection!r}"
            )


class SACGA(BaseOptimizer):
    """Partition-based GA with SA-controlled local/global competition.

    Parameters
    ----------
    problem:
        Problem to optimize.
    grid:
        Objective-space partitioning (axis + range + partition count).
        For the integrator problem this is the load-capacitance axis.
    population_size, crossover, mutation, seed:
        As in :class:`BaseOptimizer`.
    config:
        SACGA-specific knobs; see :class:`SACGAConfig`.

    The total generation budget passed to :meth:`run` covers Phase I +
    Phase II; Phase II's ``span`` is whatever remains after Phase I
    terminates.
    """

    algorithm_name = "SACGA"

    def __init__(
        self,
        problem: Problem,
        grid: PartitionGrid,
        population_size: int = 100,
        crossover=None,
        mutation=None,
        seed: RngLike = None,
        config: Optional[SACGAConfig] = None,
        backend=None,
        kernel=None,
        metrics=None,
        tracer=None,
    ) -> None:
        super().__init__(
            problem,
            population_size=population_size,
            crossover=crossover,
            mutation=mutation,
            seed=seed,
            backend=backend,
            kernel=kernel,
            metrics=metrics,
            tracer=tracer,
        )
        self.grid = grid
        self.config = config or SACGAConfig()
        if self.config.n_per_partition < 2:
            raise ValueError("n_per_partition must be >= 2")
        # Cumulative SA-gate outcomes (plain ints, read by the telemetry
        # layer; never serialized, never fed back into the algorithm).
        self._gate_considered = 0
        self._gate_exposed = 0

    # ----------------------------------------------------------- mechanics

    def _capacity(self, n_live: int) -> int:
        """Per-partition member budget given *n_live* live partitions."""
        return max(2, int(np.ceil(self.population_size / max(n_live, 1))))

    def _phase1_step(
        self, parted: PartitionedPopulation, live: List[int]
    ) -> PartitionedPopulation:
        """One pure-local-competition generation (also used before gating)."""
        return self._generation(parted, live, gate=None, gen_offset=0)

    def _generation(
        self,
        parted: PartitionedPopulation,
        live: List[int],
        gate: Optional[CompetitionGate],
        gen_offset: int,
    ) -> PartitionedPopulation:
        """One SACGA generation; *gate* None means pure local competition."""
        pop = parted.population
        mating_rank = pop.rank.astype(float).copy()

        demotion = np.zeros(pop.size)
        if gate is not None:
            with self.tracer.span("gate"):
                mating_rank, _ = self._revise_ranks(
                    parted, live, gate, gen_offset
                )
            demotion = np.maximum(mating_rank - pop.rank, 0.0)

        # Global Mating Pool: rank-based selection over the whole population
        # (or crowded tournament when ablating the paper's choice).
        with self.tracer.span("select"):
            if self.config.mating_selection == "linear_rank":
                parents_idx = linear_rank_selection(
                    mating_rank,
                    self.population_size,
                    self.rng,
                    selection_pressure=self.config.selection_pressure,
                )
            else:
                parents_idx = binary_tournament(
                    mating_rank, pop.crowding, self.population_size, self.rng
                )
            parents_idx = shuffle_for_mating(parents_idx, self.rng)
        with self.tracer.span("mate"):
            offspring_x = variation(
                pop.x[parents_idx],
                self.problem.lower,
                self.problem.upper,
                self.rng,
                self.crossover,
                self.mutation,
            )
        offspring = self._evaluate_population(offspring_x)

        with self.tracer.span("rank"):
            merged = pop.concat(offspring)
            with self.tracer.span("kernel:local_rank_and_crowd"):
                merged_view = PartitionedPopulation(
                    merged, self.grid, kernel=self.kernel
                )
            # Carry the global-competition demotions into survival: a
            # dominated participant keeps its elimination risk even after
            # local re-ranking of the merged pool (parent rows come first
            # in `merged`).
            if gate is not None and demotion.any():
                merged_view.population.rank[: pop.size] += demotion.astype(int)
            survivors = merged_view.local_truncate(
                self._capacity(len(live)), live
            )
            with self.tracer.span("kernel:local_rank_and_crowd"):
                return PartitionedPopulation(
                    survivors, self.grid, kernel=self.kernel
                )

    def _revise_ranks(
        self,
        parted: PartitionedPopulation,
        live: List[int],
        gate: CompetitionGate,
        gen_offset: int,
    ) -> Tuple[np.ndarray, int]:
        """Gate locally superior solutions into global competition (eqns 2-4).

        Returns the revised rank vector (float; lower = fitter) and the
        number of participants this iteration.
        """
        pop = parted.population
        revised = pop.rank.astype(float).copy()

        participants: List[np.ndarray] = []
        for p in live:
            superior = parted.locally_superior(p)
            if superior.size == 0:
                continue
            order = self.rng.permutation(superior.size)
            mask = gate.sample_mask(superior.size, gen_offset, self.rng)
            self._gate_considered += int(superior.size)
            participants.append(superior[order][mask])
        if not participants:
            return revised, 0
        pool = np.concatenate(participants)
        self._gate_exposed += int(pool.size)
        if pool.size == 0:
            return revised, 0

        global_rank = assign_ranks(
            pop.objectives[pool], pop.violation[pool], kernel=self.kernel
        )
        if self.config.demote_dominated:
            # Globally superior keep rank 0; dominated participants are
            # demoted below every locally-superior non-participant.
            revised[pool] = global_rank.astype(float)
        else:
            revised[pool] = np.minimum(revised[pool], global_rank)
        return revised, int(pool.size)

    def _make_gate(self, span: int) -> CompetitionGate:
        """Annealing gate shaped for a Phase II of *span* iterations."""
        return shape_parameters(
            n=self.config.n_per_partition,
            span=span,
            p_mid_first=self.config.p_mid_first,
            p_mid_last=self.config.p_mid_last,
            p_end=self.config.p_end,
        )

    def _live_after_phase1(
        self, parted: PartitionedPopulation
    ) -> List[int]:
        """Partitions that survive into Phase II."""
        covered = parted.partitions_with_feasible()
        if covered.size:
            return [int(p) for p in covered]
        # Nothing feasible anywhere yet: keep every partition alive and
        # let Phase II's constrained dominance pull toward feasibility.
        return list(range(self.grid.n_partitions))

    # ------------------------------------------------------ loop state hooks

    def _loop_init(
        self, n_generations: int, initial_x: Optional[np.ndarray]
    ) -> Dict[str, Any]:
        self._gate_considered = 0
        self._gate_exposed = 0
        population = self._initial_population(initial_x)
        parted = PartitionedPopulation(population, self.grid, kernel=self.kernel)
        self.history.record(0, parted.population, self._n_evaluations, force=True)
        self.callbacks(0, parted.population)
        return {
            "generation": 0,
            "parted": parted,
            "grid": self.grid,
            "phase": 1,
            "gen_t": None,
            "span": None,
            "live": None,
            "gate": None,
        }

    def _phase1_active(self, state: Dict[str, Any], n_generations: int) -> bool:
        """Phase I continues until feasible coverage or the iteration cap."""
        limit = min(self.config.phase1_max_iterations, n_generations)
        if state["generation"] >= limit:
            return False
        covered = state["parted"].partitions_with_feasible()
        return covered.size < self.grid.n_partitions

    def _phase1_generation(self, state: Dict[str, Any]) -> None:
        """One pure-local-competition generation (every partition live)."""
        all_parts = list(range(self.grid.n_partitions))
        parted = self._phase1_step(state["parted"], all_parts)
        gen = state["generation"] + 1
        state["parted"] = parted
        state["generation"] = gen
        self._sync_loop_state(state)
        self.history.record(
            gen,
            parted.population,
            self._n_evaluations,
            extras={"phase": 1.0, "live_partitions": float(len(all_parts))},
        )
        self.callbacks(gen, parted.population)

    def _finish_phase1(self, state: Dict[str, Any], n_generations: int) -> None:
        """Transition to Phase II: fix ``gen_t``, live partitions and gate.

        When Phase I consumed the whole budget the Phase II that never
        ran is recorded honestly: ``span`` is 0 and no annealing gate is
        constructed (metadata reports ``gate: None``).
        """
        gen_t = state["generation"]
        span = n_generations - gen_t
        state["phase"] = 2
        state["gen_t"] = gen_t
        state["span"] = span
        state["live"] = self._live_after_phase1(state["parted"])
        state["gate"] = self._make_gate(span) if span > 0 else None

    def _phase2_generation(self, state: Dict[str, Any], n_generations: int) -> None:
        """One SA-mixed-competition generation."""
        gen = state["generation"] + 1
        step = gen - state["gen_t"]
        gate = state["gate"]
        live = state["live"]
        parted = self._generation(state["parted"], live, gate, gen_offset=step)
        state["parted"] = parted
        state["generation"] = gen
        self._sync_loop_state(state)
        self.history.record(
            gen,
            parted.population,
            self._n_evaluations,
            extras={
                "phase": 2.0,
                "temperature": float(gate.schedule.temperature(step)),
                "live_partitions": float(len(live)),
            },
            force=(gen == n_generations),
        )
        self.callbacks(gen, parted.population)

    def _sync_loop_state(self, state: Dict[str, Any]) -> None:
        """Mirror optimizer-held mutable attributes into the loop state so
        checkpoints capture them (subclasses re-fit/expand ``self.grid``)."""
        state["grid"] = self.grid

    def _restore_loop_state(self, state: Dict[str, Any]) -> None:
        self.grid = state["grid"]
        super()._restore_loop_state(state)

    def _loop_step(self, state: Dict[str, Any], n_generations: int) -> None:
        if state["phase"] == 1:
            if self._phase1_active(state, n_generations):
                self._phase1_generation(state)
                return
            # Phase transitions happen lazily at the *start* of the next
            # step, so the state seen by end-of-generation callbacks (and
            # therefore by checkpoints) is always self-consistent.
            self._finish_phase1(state, n_generations)
        self._phase2_generation(state, n_generations)

    def _loop_finish(
        self, state: Dict[str, Any], n_generations: int
    ) -> Tuple[Population, Dict]:
        if state["phase"] == 1:
            # The run ended inside Phase I (budget exhausted or stop
            # requested); settle the Phase II bookkeeping for metadata.
            self._finish_phase1(state, n_generations)
        gate = state["gate"]
        meta = {
            "n_partitions": self.grid.n_partitions,
            "partition_axis": self.grid.axis,
            "gen_t": state["gen_t"],
            "span": state["span"],
            "live_partitions": state["live"],
            "gate": None
            if gate is None
            else {
                "k1": gate.k1,
                "k2": gate.k2,
                "alpha": gate.alpha,
                "t_init": gate.schedule.t_init,
                "n": gate.n,
            },
        }
        return state["parted"].population, meta
