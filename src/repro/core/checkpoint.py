"""Crash-safe checkpointing of in-flight optimizer runs.

The paper's headline experiments are 800-1250-generation runs repeated
across seeds; at that scale a crash at generation 700 must not cost the
whole run.  This module provides the persistence half of the robustness
layer:

* :func:`save_checkpoint` / :func:`load_checkpoint` — pickle a
  checkpoint payload to disk *atomically* (write-temp-then-rename, with
  an fsync before the rename), so a crash mid-write can never corrupt
  the previous good checkpoint.
* :class:`CheckpointCallback` — a per-generation progress callback that
  snapshots the owning optimizer every ``every`` generations via
  :meth:`BaseOptimizer.capture_checkpoint`.

A checkpoint captures *everything* the generational loop needs to
continue: the loop state (population arrays, SACGA/MESACGA phase,
live-partition and annealing-gate state), the RNG bit-generator state,
recorded history, evaluation counters and backend statistics.  Resuming
with ``BaseOptimizer.run(n_generations, resume_from=ckpt)`` therefore
reproduces the uninterrupted run's result **byte-for-byte** (under
``result_to_dict(include_timing=False)``; wall-clock fields obviously
differ).  The equivalence is locked in by
``tests/core/test_checkpoint_resume.py`` for all three paper algorithms.

One documented exception: a :class:`~repro.core.evaluation.CachedBackend`
does not persist its memo table, so a resumed run recomputes rows the
uninterrupted run would have hit in cache — trajectories stay identical
(caching is semantics-preserving) but cache counters differ.

Usage::

    algo = SACGA(problem, grid, seed=7)
    algo.add_callback(CheckpointCallback(algo, "run.ckpt", every=25))
    try:
        result = algo.run(800)
    except SomethingTerrible:
        ...  # machine died at generation ~700
    # later, in a fresh process:
    algo = SACGA(problem, grid, seed=7)      # same configuration
    result = algo.run(800, resume_from="run.ckpt")
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Union

PathLike = Union[str, Path]

#: Bump when the payload layout changes incompatibly; ``load_checkpoint``
#: rejects payloads written by a different major layout.
CHECKPOINT_VERSION = 1

#: Keys every checkpoint payload carries (the runner may add "context").
REQUIRED_KEYS = (
    "version",
    "algorithm",
    "problem",
    "n_generations",
    "generation",
    "rng_state",
    "loop_state",
    "history",
    "n_evaluations",
    "problem_evaluations",
    "backend_stats",
    "backend_stats_prev",
    "wall_time",
)


def save_checkpoint(payload: Dict[str, Any], path: PathLike) -> Path:
    """Atomically persist a checkpoint payload; returns the resolved path.

    The payload is pickled to ``<path>.tmp`` first, flushed and fsynced,
    then renamed over *path* — on every POSIX filesystem the rename is
    atomic, so readers only ever observe a complete checkpoint.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("wb") as fh:
        pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


def load_checkpoint(source: Union[PathLike, Dict[str, Any]]) -> Dict[str, Any]:
    """Load and validate a checkpoint payload (path or already-loaded dict)."""
    if isinstance(source, dict):
        payload = source
    else:
        with Path(source).open("rb") as fh:
            payload = pickle.load(fh)
    if not isinstance(payload, dict):
        raise ValueError(f"checkpoint does not hold a payload dict: {type(payload)}")
    missing = [key for key in REQUIRED_KEYS if key not in payload]
    if missing:
        raise ValueError(f"checkpoint is missing required keys: {missing}")
    if payload["version"] != CHECKPOINT_VERSION:
        raise ValueError(
            f"checkpoint version {payload['version']} is not supported "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )
    return payload


class CheckpointCallback:
    """Progress callback that checkpoints the optimizer every K generations.

    Parameters
    ----------
    optimizer:
        The optimizer being run (anything exposing ``capture_checkpoint``).
    path:
        Checkpoint file; each save atomically replaces the previous one.
    every:
        Checkpoint cadence in generations (generation 0 is never saved —
        there is nothing to resume before the first generation).
    context:
        Optional JSON-able dict stored as ``payload["context"]``; the
        experiment runner uses it to record how to rebuild the optimizer
        so that ``repro resume <ckpt>`` is self-contained.
    extra_state:
        Optional mapping ``name -> zero-arg callable``; each callable's
        return value is stored under ``payload["extra"][name]``.  Use it
        to persist run-adjacent objects such as a
        :class:`~repro.core.archive.ParetoArchive`
        (``extra_state={"archive": archive.state_dict}``).
    ledger:
        Optional :class:`~repro.experiments.ledger.RunLedger`; when given,
        a ``checkpoint`` event is emitted after every successful save.
    run_id:
        Label echoed into ledger events.
    """

    def __init__(
        self,
        optimizer,
        path: PathLike,
        every: int = 10,
        context: Optional[Dict[str, Any]] = None,
        extra_state: Optional[Dict[str, Callable[[], Any]]] = None,
        ledger=None,
        run_id: Optional[str] = None,
    ) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.optimizer = optimizer
        self.path = Path(path)
        self.every = int(every)
        self.context = context
        self.extra_state = dict(extra_state or {})
        self.ledger = ledger
        self.run_id = run_id
        self.n_saved = 0
        self.last_generation: Optional[int] = None

    def __call__(self, generation: int, population) -> None:
        if generation == 0 or generation % self.every:
            return
        self.save(generation)

    def save(self, generation: Optional[int] = None) -> Path:
        """Capture and persist a checkpoint right now."""
        extra = {name: fn() for name, fn in self.extra_state.items()}
        payload = self.optimizer.capture_checkpoint(extra=extra)
        if self.context is not None:
            payload["context"] = self.context
        path = save_checkpoint(payload, self.path)
        self.n_saved += 1
        self.last_generation = payload["generation"]
        if self.ledger is not None:
            self.ledger.emit(
                "checkpoint",
                run=self.run_id,
                generation=payload["generation"],
                path=str(path),
            )
        return path

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CheckpointCallback(path={str(self.path)!r}, every={self.every}, "
            f"n_saved={self.n_saved})"
        )
