"""Elitist non-dominated sorting GA (NSGA-II, Deb et al. 2002).

This is the paper's baseline — "Traditional Purely Global competition
based GA" (TPG).  Every individual competes in a single global
non-dominated ranking each generation; selection pressure alone decides
survival, which is precisely what Section 3 of the paper shows causes
Pareto-front clustering on the analog sizing problem.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.core.base_optimizer import BaseOptimizer
from repro.core.individual import Population
from repro.core.kernels import rank_and_crowd, truncate_and_rank
from repro.core.nds import assign_ranks
from repro.core.operators import variation
from repro.core.selection import binary_tournament, shuffle_for_mating


class NSGA2(BaseOptimizer):
    """NSGA-II with constrained dominance, SBX and polynomial mutation.

    Usage::

        result = NSGA2(problem, population_size=200, seed=1).run(800)
        result.front_objectives   # (k, n_obj) feasible Pareto front
    """

    algorithm_name = "NSGA-II"

    def _rank_and_crowd(self, population: Population) -> None:
        """Assign global rank and per-front crowding distance in place."""
        rank, crowding = rank_and_crowd(
            population.objectives, population.violation, kernel=self.kernel
        )
        population.rank[:] = rank
        population.crowding[:] = crowding

    def _loop_init(
        self, n_generations: int, initial_x: Optional[np.ndarray]
    ) -> Dict[str, Any]:
        population = self._initial_population(initial_x)
        self._rank_and_crowd(population)
        self.history.record(0, population, self._n_evaluations, force=True)
        self.callbacks(0, population)
        return {"generation": 0, "population": population}

    def _loop_step(self, state: Dict[str, Any], n_generations: int) -> None:
        population: Population = state["population"]
        gen = state["generation"] + 1
        with self.tracer.span("select"):
            parents_idx = binary_tournament(
                population.rank,
                population.crowding,
                self.population_size,
                self.rng,
            )
            parents_idx = shuffle_for_mating(parents_idx, self.rng)
        with self.tracer.span("mate"):
            offspring_x = variation(
                population.x[parents_idx],
                self.problem.lower,
                self.problem.upper,
                self.rng,
                self.crossover,
                self.mutation,
            )
        offspring = self._evaluate_population(offspring_x)

        merged = population.concat(offspring)
        # Fused environmental selection: one non-dominated sort picks
        # the survivors AND yields their post-truncation (rank,
        # crowding) — the reference kernel runs the historical
        # truncate-then-resort pair instead.
        with self.tracer.span("rank"):
            with self.tracer.span("kernel:truncate_and_rank"):
                keep, rank, crowding = truncate_and_rank(
                    merged.objectives,
                    merged.violation,
                    self.population_size,
                    kernel=self.kernel,
                )
            population = merged.subset(keep)
        population.rank[:] = rank
        population.crowding[:] = crowding
        state["population"] = population
        state["generation"] = gen

        self.history.record(
            gen,
            population,
            self._n_evaluations,
            force=(gen == n_generations),
        )
        self.callbacks(gen, population)

    def _loop_finish(
        self, state: Dict[str, Any], n_generations: int
    ) -> Tuple[Population, Dict]:
        return state["population"], {"selection": "crowded binary tournament"}


def nsga2_ranks(objectives: np.ndarray, violations: np.ndarray) -> np.ndarray:
    """Convenience wrapper: global constrained non-dominated ranks."""
    return assign_ranks(objectives, violations)
