"""Real-coded variation operators.

Simulated Binary Crossover (SBX) and polynomial mutation — the standard
real-parameter operators of Deb's NSGA-II, which the paper builds on.
Both are fully vectorized over the mating batch and always respect the
box bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.validation import check_bounds, check_positive, check_probability


@dataclass
class SBXCrossover:
    """Simulated Binary Crossover.

    Parameters
    ----------
    probability:
        Per-pair crossover probability (pairs skipped with ``1 - p`` are
        copied through unchanged).
    eta:
        Distribution index; larger values produce children closer to the
        parents.  Deb's default for real parameters is 15–20.
    per_variable_probability:
        Probability that an individual gene undergoes the SBX exchange
        within a crossing pair (0.5 is the classic choice).
    """

    probability: float = 0.9
    eta: float = 15.0
    per_variable_probability: float = 0.5

    def __post_init__(self) -> None:
        check_probability("probability", self.probability)
        check_positive("eta", self.eta)
        check_probability("per_variable_probability", self.per_variable_probability)

    def __call__(
        self,
        parents_a: np.ndarray,
        parents_b: np.ndarray,
        lower: np.ndarray,
        upper: np.ndarray,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Cross two parent batches; returns two child batches of equal shape."""
        a = np.atleast_2d(np.asarray(parents_a, dtype=float)).copy()
        b = np.atleast_2d(np.asarray(parents_b, dtype=float)).copy()
        if a.shape != b.shape:
            raise ValueError(f"parent batch shapes differ: {a.shape} vs {b.shape}")
        lower, upper = check_bounds(lower, upper)
        n, n_var = a.shape
        if n == 0:
            return a, b

        cross_pair = rng.random(n) < self.probability
        cross_gene = rng.random((n, n_var)) < self.per_variable_probability
        distinct = np.abs(a - b) > 1e-14
        do = cross_pair[:, None] & cross_gene & distinct
        if not do.any():
            return a, b

        x1 = np.minimum(a, b)
        x2 = np.maximum(a, b)
        span = np.where(do, x2 - x1, 1.0)

        rand = rng.random((n, n_var))
        eta_exp = 1.0 / (self.eta + 1.0)

        lo = lower[None, :]
        hi = upper[None, :]
        # Bounded SBX (Deb & Agrawal): the spread factor is limited so that
        # children cannot leave the box.
        beta_l = 1.0 + 2.0 * (x1 - lo) / span
        beta_u = 1.0 + 2.0 * (hi - x2) / span

        c1 = self._child(x1, x2, span, beta_l, rand, eta_exp, low_side=True)
        c2 = self._child(x1, x2, span, beta_u, rand, eta_exp, low_side=False)

        out_a = np.where(do, c1, a)
        out_b = np.where(do, c2, b)
        # Randomly swap which child goes to which slot, as in Deb's code.
        swap = rng.random((n, n_var)) < 0.5
        child_a = np.where(swap & do, out_b, out_a)
        child_b = np.where(swap & do, out_a, out_b)
        return (
            np.clip(child_a, lower, upper),
            np.clip(child_b, lower, upper),
        )

    def _child(
        self,
        x1: np.ndarray,
        x2: np.ndarray,
        span: np.ndarray,
        beta_bound: np.ndarray,
        rand: np.ndarray,
        eta_exp: float,
        low_side: bool,
    ) -> np.ndarray:
        alpha = 2.0 - np.power(beta_bound, -(self.eta + 1.0))
        inv_alpha = 1.0 / alpha
        betaq = np.where(
            rand <= inv_alpha,
            np.power(rand * alpha, eta_exp),
            np.power(1.0 / np.maximum(2.0 - rand * alpha, 1e-300), eta_exp),
        )
        if low_side:
            return 0.5 * ((x1 + x2) - betaq * span)
        return 0.5 * ((x1 + x2) + betaq * span)


@dataclass
class PolynomialMutation:
    """Polynomial mutation (Deb's bounded variant).

    Parameters
    ----------
    probability:
        Per-gene mutation probability.  ``None`` means ``1 / n_var`` is
        used at call time (the standard heuristic).
    eta:
        Distribution index; larger = smaller perturbations.
    """

    probability: float = None  # type: ignore[assignment]
    eta: float = 20.0

    def __post_init__(self) -> None:
        if self.probability is not None:
            check_probability("probability", self.probability)
        check_positive("eta", self.eta)

    def __call__(
        self,
        x: np.ndarray,
        lower: np.ndarray,
        upper: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Mutate a batch in place-free fashion; returns the mutated copy."""
        arr = np.atleast_2d(np.asarray(x, dtype=float)).copy()
        lower, upper = check_bounds(lower, upper)
        n, n_var = arr.shape
        if n == 0:
            return arr
        p = self.probability if self.probability is not None else 1.0 / n_var
        mutate = rng.random((n, n_var)) < p
        if not mutate.any():
            return arr

        lo = lower[None, :]
        hi = upper[None, :]
        span = hi - lo
        delta1 = (arr - lo) / span
        delta2 = (hi - arr) / span
        rand = rng.random((n, n_var))
        mut_pow = 1.0 / (self.eta + 1.0)

        low_branch = rand < 0.5
        xy = np.where(low_branch, 1.0 - delta1, 1.0 - delta2)
        val = np.where(
            low_branch,
            2.0 * rand + (1.0 - 2.0 * rand) * np.power(xy, self.eta + 1.0),
            2.0 * (1.0 - rand) + 2.0 * (rand - 0.5) * np.power(xy, self.eta + 1.0),
        )
        deltaq = np.where(
            low_branch,
            np.power(np.maximum(val, 0.0), mut_pow) - 1.0,
            1.0 - np.power(np.maximum(val, 0.0), mut_pow),
        )
        mutated = arr + deltaq * span
        out = np.where(mutate, mutated, arr)
        return np.clip(out, lower, upper)


def variation(
    parents: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    rng: np.random.Generator,
    crossover: SBXCrossover,
    mutation: PolynomialMutation,
) -> np.ndarray:
    """Produce one child per parent slot via pairwise SBX + mutation.

    Parents are consumed two at a time (batch order is assumed already
    shuffled by the selection step); an odd final parent is cloned before
    mutation.  The returned batch has exactly ``len(parents)`` rows.
    """
    batch = np.atleast_2d(np.asarray(parents, dtype=float))
    n = batch.shape[0]
    if n == 0:
        return batch.copy()
    half = n // 2
    a = batch[:half]
    b = batch[half : 2 * half]
    child_a, child_b = crossover(a, b, lower, upper, rng)
    children = [child_a, child_b]
    if n % 2 == 1:
        children.append(batch[-1:].copy())
    offspring = np.vstack(children)
    return mutation(offspring, lower, upper, rng)
