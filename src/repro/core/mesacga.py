"""MESACGA — Multi-phase Expanding-partitions SACGA (Section 4.5, Fig. 7).

SACGA needs the "right" number of partitions (Fig. 6 shows a clear
optimum at m = 16 for the paper's circuit), but no method short of full
experimentation finds that number.  MESACGA sidesteps the choice: it
starts with many small partitions and, at the end of each phase,
*expands* the partitions (reduces their count, increases their capacity),
ending with a single partition covering the whole objective space — at
which point local competition has smoothly become global competition.

Each phase runs the SACGA Phase-II machinery (annealing gate reset per
phase) for ``span`` iterations.  The paper's example schedule is 7 phases
of 20, 13, 8, 5, 3, 2, 1 partitions preceded by a pure-local phase.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.individual import Population
from repro.core.partitions import PartitionGrid, PartitionedPopulation, expanding_schedule
from repro.core.sacga import SACGA, SACGAConfig
from repro.problems.base import Problem
from repro.utils.rng import RngLike

PAPER_SCHEDULE = (20, 13, 8, 5, 3, 2, 1)


class MESACGA(SACGA):
    """Multi-phase expanding-partitions SACGA.

    Parameters
    ----------
    problem, population_size, crossover, mutation, seed, config:
        As in :class:`SACGA` (``config.phase1_max_iterations`` caps the
        initial pure-local phase).
    axis, low, high:
        The partitioning objective and its range (shared by all phases).
    partition_schedule:
        Strictly decreasing partition counts, ending in 1.  Defaults to
        the paper's ``(20, 13, 8, 5, 3, 2, 1)``.
    span_per_phase:
        Iterations per phase.  ``None`` (default) splits whatever remains
        of :meth:`run`'s generation budget equally across phases (the
        remainder goes to the last phase).  When set, each phase runs
        exactly this long and :meth:`run` should be given
        ``total_generations(span_per_phase)`` generations — extra budget
        is appended to the final (single-partition) phase, and a smaller
        budget truncates the tail phases.
    """

    algorithm_name = "MESACGA"

    def __init__(
        self,
        problem: Problem,
        axis: int,
        low: float,
        high: float,
        partition_schedule: Optional[Sequence[int]] = None,
        span_per_phase: Optional[int] = None,
        population_size: int = 100,
        crossover=None,
        mutation=None,
        seed: RngLike = None,
        config: Optional[SACGAConfig] = None,
        backend=None,
        kernel=None,
        metrics=None,
        tracer=None,
    ) -> None:
        schedule = list(partition_schedule or PAPER_SCHEDULE)
        _validate_schedule(schedule)
        first_grid = PartitionGrid(
            axis=axis, low=low, high=high, n_partitions=schedule[0]
        )
        super().__init__(
            problem,
            grid=first_grid,
            population_size=population_size,
            crossover=crossover,
            mutation=mutation,
            seed=seed,
            config=config,
            backend=backend,
            kernel=kernel,
            metrics=metrics,
            tracer=tracer,
        )
        self.partition_schedule = schedule
        self.span_per_phase = None if span_per_phase is None else int(span_per_phase)
        if self.span_per_phase is not None and self.span_per_phase < 1:
            raise ValueError(
                f"span_per_phase must be >= 1, got {self.span_per_phase}"
            )

    # ------------------------------------------------------------- helpers

    def total_generations(self, span_per_phase: Optional[int] = None) -> int:
        """Natural budget: Phase-I cap plus span x number of phases."""
        span = span_per_phase or self.span_per_phase
        if span is None:
            raise ValueError("no span_per_phase configured")
        return self.config.phase1_max_iterations + span * len(self.partition_schedule)

    def run_full(self):
        """Run with the natural budget implied by ``span_per_phase``."""
        return self.run(self.total_generations())

    def _phase_spans(self, remaining: int) -> List[int]:
        n_phases = len(self.partition_schedule)
        if self.span_per_phase is not None:
            spans: List[int] = []
            left = remaining
            for k in range(n_phases):
                take = min(self.span_per_phase, left)
                spans.append(take)
                left -= take
            if left > 0:
                spans[-1] += left
            return spans
        base = remaining // n_phases
        spans = [base] * n_phases
        spans[-1] += remaining - base * n_phases
        return spans

    def _live_partitions(self, parted: PartitionedPopulation) -> List[int]:
        covered = parted.partitions_with_feasible()
        if covered.size:
            return [int(p) for p in covered]
        return list(range(parted.grid.n_partitions))

    # ------------------------------------------------------ loop state hooks

    def _loop_init(
        self, n_generations: int, initial_x: Optional[np.ndarray]
    ) -> Dict[str, Any]:
        state = super()._loop_init(n_generations, initial_x)
        state.update(
            spans=None,
            phase_idx=-1,
            step_in_phase=0,
            phase_log=[],
        )
        return state

    def _finish_phase1(self, state: Dict[str, Any], n_generations: int) -> None:
        """Transition out of the pure-local phase: fix the per-phase spans
        and enter the first phase of the expanding schedule."""
        gen_t = state["generation"]
        state["phase"] = 2
        state["gen_t"] = gen_t
        state["spans"] = self._phase_spans(max(n_generations - gen_t, 0))
        self._advance_phase(state)

    def _advance_phase(self, state: Dict[str, Any]) -> None:
        """Enter the next schedule phase with a positive span (if any)."""
        spans: List[int] = state["spans"]
        idx = state["phase_idx"] + 1
        while idx < len(self.partition_schedule) and spans[idx] <= 0:
            idx += 1
        if self._stop_requested or idx >= len(self.partition_schedule):
            state["phase_idx"] = len(self.partition_schedule)
            state["step_in_phase"] = 0
            state["gate"] = None
            self._sync_loop_state(state)
            return
        # Expand partitions: same range, fewer slices, larger capacity.
        self.grid = self.grid.with_partitions(self.partition_schedule[idx])
        with self.tracer.span("expand_partitions"):
            parted = PartitionedPopulation(
                state["parted"].population, self.grid, kernel=self.kernel
            )
        state["parted"] = parted
        state["phase_idx"] = idx
        state["step_in_phase"] = 0
        state["live"] = self._live_partitions(parted)
        state["gate"] = self._make_gate(spans[idx])
        self._sync_loop_state(state)

    def _close_phase(self, state: Dict[str, Any]) -> None:
        idx = state["phase_idx"]
        state["phase_log"].append(
            {
                "phase": idx + 1,
                "n_partitions": self.partition_schedule[idx],
                "span": state["spans"][idx],
                "end_generation": state["generation"],
            }
        )

    def _phase2_generation(self, state: Dict[str, Any], n_generations: int) -> None:
        """One SA-mixed generation inside the current schedule phase."""
        gen = state["generation"] + 1
        idx = state["phase_idx"]
        step = state["step_in_phase"] + 1
        gate = state["gate"]
        live = state["live"]
        parted = self._generation(state["parted"], live, gate, gen_offset=step)
        state["parted"] = parted
        state["generation"] = gen
        state["step_in_phase"] = step
        self._sync_loop_state(state)
        self.history.record(
            gen,
            parted.population,
            self._n_evaluations,
            extras={
                "phase": float(idx + 1),
                "n_partitions": float(self.partition_schedule[idx]),
                "temperature": float(gate.schedule.temperature(step)),
                "live_partitions": float(len(live)),
            },
            force=(gen == n_generations),
        )
        self.callbacks(gen, parted.population)

    def _loop_step(self, state: Dict[str, Any], n_generations: int) -> None:
        if state["phase"] == 1:
            if self._phase1_active(state, n_generations):
                self._phase1_generation(state)
                return
            self._finish_phase1(state, n_generations)
        elif state["step_in_phase"] >= state["spans"][state["phase_idx"]]:
            # Phase boundaries are crossed lazily at the start of the next
            # step, keeping checkpointed states self-consistent.
            self._close_phase(state)
            self._advance_phase(state)
        self._phase2_generation(state, n_generations)

    def _loop_finish(
        self, state: Dict[str, Any], n_generations: int
    ) -> Tuple[Population, Dict]:
        if state["phase"] == 1:
            self._finish_phase1(state, n_generations)
        elif (
            state["phase_idx"] < len(self.partition_schedule)
            and state["step_in_phase"] > 0
        ):
            # Stopped (or completed) mid-phase: log the in-flight phase.
            self._close_phase(state)
        meta = {
            "partition_schedule": list(self.partition_schedule),
            "partition_axis": self.grid.axis,
            "gen_t": state["gen_t"],
            "phase_log": state["phase_log"],
        }
        return state["parted"].population, meta


def _validate_schedule(schedule: Sequence[int]) -> None:
    if not schedule:
        raise ValueError("partition schedule must be non-empty")
    for a, b in zip(schedule, schedule[1:]):
        if b >= a:
            raise ValueError(
                f"partition schedule must be strictly decreasing, got {schedule}"
            )
    if schedule[-1] != 1:
        raise ValueError(
            f"partition schedule must end with a single partition, got {schedule}"
        )
    if any(m < 1 for m in schedule):
        raise ValueError(f"partition counts must be >= 1, got {schedule}")


def paper_schedule(start: int = 20) -> List[int]:
    """The paper's expanding schedule; ``start=20`` yields 20,13,8,5,3,2,1."""
    return expanding_schedule(start)
