"""Simulated-Annealing-driven competition gating (paper eqns (2)-(4)).

During SACGA's second phase, each partition's locally superior solutions
are considered in random order i = 1, 2, ..., m_p; solution i is exposed
to *global* competition with probability

    prob(i, gen) = 1 - exp(-alpha / (c_i * T_A(gen)))            (3)

where the cost of exposure grows with the solution's position in the
random sequence,

    c_i = k1 * exp(k2 * i / (n - 1))                             (2)

and the annealing temperature cools from T_init down to 1 over the
phase's ``span`` iterations,

    T_A(gen) = T_init * exp(-k3 * ln(T_init) / span * (gen - gen_t)). (4)

Early in the phase T_A is large, probabilities are near zero and
competition stays local; at the end T_A = 1 and every locally superior
solution competes globally.  Later positions in the random sequence (large
i) have higher cost and therefore lower probability, so a partition never
commits all of its good solutions to the global arena at once — it keeps
representation even if its champions are globally dominated (paper §4.4,
feature 2).

:func:`shape_parameters` solves k1, k2, alpha, T_init from the anchor
probabilities the paper names (the values at ``gen_t + span/2`` for i = 1
and i = n, and at ``gen_t + span``), which is how Fig. 4's curves are
produced.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_in_range, check_positive


@dataclass(frozen=True)
class AnnealingSchedule:
    """Exponential cooling schedule of eqn (4).

    ``temperature(0) == t_init`` and, with ``k3 = 1``,
    ``temperature(span) == 1``.
    """

    t_init: float
    span: int
    k3: float = 1.0

    def __post_init__(self) -> None:
        if self.t_init <= 1.0:
            raise ValueError(
                f"t_init must exceed 1 (cooling target), got {self.t_init}"
            )
        check_positive("span", self.span)
        check_positive("k3", self.k3)

    def temperature(self, gen_offset) -> np.ndarray:
        """T_A at ``gen - gen_t = gen_offset`` (scalar or array)."""
        offset = np.asarray(gen_offset, dtype=float)
        rate = self.k3 * np.log(self.t_init) / self.span
        return self.t_init * np.exp(-rate * offset)


@dataclass(frozen=True)
class CompetitionGate:
    """Eqns (2)+(3): probability that locally superior solution i goes global.

    Parameters
    ----------
    k1, k2:
        Cost-shaping constants of eqn (2).
    alpha:
        Numerator constant of eqn (3).
    n:
        Desired number of globally non-dominated solutions per partition
        at the end of the phase; the cost exponent is ``i / (n - 1)``.
    schedule:
        The annealing schedule supplying T_A.
    """

    k1: float
    k2: float
    alpha: float
    n: int
    schedule: AnnealingSchedule

    def __post_init__(self) -> None:
        check_positive("k1", self.k1)
        check_positive("alpha", self.alpha)
        if self.n < 2:
            raise ValueError(f"n must be >= 2 for the i/(n-1) exponent, got {self.n}")

    def cost(self, i) -> np.ndarray:
        """Cost c_i of exposing the i-th considered solution (eqn 2)."""
        idx = np.asarray(i, dtype=float)
        if np.any(idx < 1):
            raise ValueError("sequence positions i start at 1")
        return self.k1 * np.exp(self.k2 * idx / (self.n - 1))

    def probability(self, i, gen_offset) -> np.ndarray:
        """Participation probability of eqn (3); broadcasts i x gen_offset."""
        c = self.cost(i)
        t = self.schedule.temperature(gen_offset)
        return 1.0 - np.exp(-self.alpha / (c * t))

    def sample_mask(
        self,
        m_p: int,
        gen_offset: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Random gate decisions for a partition with *m_p* superior solutions.

        Returns a boolean array over the *sequence positions* 1..m_p: entry
        ``j`` says whether the solution considered ``j+1``-th (in the
        caller's random order) participates in global competition this
        iteration.
        """
        if m_p < 0:
            raise ValueError(f"m_p must be non-negative, got {m_p}")
        if m_p == 0:
            return np.zeros(0, dtype=bool)
        probs = self.probability(np.arange(1, m_p + 1), gen_offset)
        return rng.random(m_p) < probs

    def curve(self, i: int, n_points: int = 101) -> "tuple[np.ndarray, np.ndarray]":
        """(gen_offset, probability) series for plotting — reproduces Fig 4."""
        offsets = np.linspace(0.0, self.schedule.span, n_points)
        return offsets, self.probability(i, offsets)


def shape_parameters(
    n: int = 5,
    span: int = 100,
    p_mid_first: float = 0.5,
    p_mid_last: float = 0.1,
    p_end: float = 0.95,
    k3: float = 1.0,
    k1: float = 1.0,
) -> CompetitionGate:
    """Solve gate constants from the paper's three anchor probabilities.

    The paper (§4.4, feature 3) says the curve shapes "can be easily
    controlled by selecting k1, k2, k3 for desired values of probability
    at iteration gen_t + span/2 for i = 1, n and that at gen_t + span".
    Concretely, with ``k3 = 1`` (so T_A(span) = 1):

    * ``prob(i=1, span/2) = p_mid_first``
    * ``prob(i=n, span/2) = p_mid_last``
    * ``prob(i=n, span)  >= p_end``  (this pins T_init)

    ``k1`` is redundant with ``alpha`` (only ``alpha / k1`` matters) and is
    kept as a free normalization, default 1.

    Returns
    -------
    CompetitionGate
        Gate whose curves match the anchors; defaults reproduce Fig 4.
    """
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    check_positive("span", span)
    check_positive("k1", k1)
    check_in_range("p_mid_first", p_mid_first, 0.0, 1.0, inclusive=(False, False))
    check_in_range("p_mid_last", p_mid_last, 0.0, 1.0, inclusive=(False, False))
    check_in_range("p_end", p_end, 0.0, 1.0, inclusive=(False, False))
    if p_mid_last >= p_mid_first:
        raise ValueError(
            "p_mid_last must be below p_mid_first (later sequence positions "
            "must be less likely to go global)"
        )
    if p_end <= p_mid_last:
        raise ValueError("p_end must exceed p_mid_last (probabilities rise in time)")

    # T_init from the end-of-phase anchor: prob(i=n, T=1) = 1 - e^{-A_n},
    # prob(i=n, T=sqrt(T_init)) = p_mid_last  =>  A_n = -ln(1-p_mid_last)*sqrt(T_init)
    # and 1 - e^{-A_n} = p_end.
    sqrt_t_init = np.log(1.0 - p_end) / np.log(1.0 - p_mid_last)
    t_init = float(sqrt_t_init**2)
    if t_init <= 1.0:
        raise ValueError(
            "anchor probabilities imply no cooling (t_init <= 1); "
            "raise p_end or lower p_mid_last"
        )
    a_first = -np.log(1.0 - p_mid_first) * sqrt_t_init  # alpha / c_1
    a_last = -np.log(1.0 - p_mid_last) * sqrt_t_init  # alpha / c_n
    k2 = float(np.log(a_first / a_last))
    alpha = float(a_first * k1 * np.exp(k2 / (n - 1)))
    schedule = AnnealingSchedule(t_init=t_init, span=int(span), k3=k3)
    return CompetitionGate(k1=k1, k2=k2, alpha=alpha, n=n, schedule=schedule)
