"""Objective-space partitioning (Section 4.3 of the paper).

The objective-function space is split into ``m`` equal slices induced by
dividing the *range space of one objective* (for the integrator problem:
the load capacitance) into ``m`` equal, disjoint intervals.  Local
competition then ranks individuals only against members of the same
slice.

:class:`PartitionGrid` is the static grid used by SACGA;
:func:`expanding_schedule` produces the shrinking partition counts of
MESACGA (e.g. 20 → 13 → 8 → 5 → 3 → 2 → 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.individual import Population
from repro.core.kernels import local_rank_and_crowd
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class PartitionGrid:
    """Equal-width partitioning of one objective's range.

    Parameters
    ----------
    axis:
        Index of the partitioning objective.
    low, high:
        Range of that objective that the grid covers.  Values outside are
        clamped into the first/last partition (the paper's integrator
        problem has a hard physical range, 0–5 pF of load capacitance).
    n_partitions:
        Number of equal slices ``m``.
    """

    axis: int
    low: float
    high: float
    n_partitions: int

    def __post_init__(self) -> None:
        if self.axis < 0:
            raise ValueError(f"axis must be >= 0, got {self.axis}")
        if not self.high > self.low:
            raise ValueError(
                f"high ({self.high}) must exceed low ({self.low})"
            )
        check_positive("n_partitions", self.n_partitions)

    @property
    def width(self) -> float:
        return (self.high - self.low) / self.n_partitions

    @property
    def edges(self) -> np.ndarray:
        """Partition boundaries, ``n_partitions + 1`` values."""
        return np.linspace(self.low, self.high, self.n_partitions + 1)

    def assign(self, objectives: np.ndarray) -> np.ndarray:
        """Partition index of each objective row (clamped into range)."""
        objs = np.atleast_2d(np.asarray(objectives, dtype=float))
        if self.axis >= objs.shape[1]:
            raise ValueError(
                f"axis {self.axis} out of range for {objs.shape[1]} objectives"
            )
        coord = objs[:, self.axis]
        raw = np.floor((coord - self.low) / self.width).astype(int)
        return np.clip(raw, 0, self.n_partitions - 1)

    def with_partitions(self, n_partitions: int) -> "PartitionGrid":
        """Same range/axis, different slice count (MESACGA phase change)."""
        return PartitionGrid(
            axis=self.axis, low=self.low, high=self.high, n_partitions=n_partitions
        )

    def centers(self) -> np.ndarray:
        edges = self.edges
        return 0.5 * (edges[:-1] + edges[1:])


def expanding_schedule(
    start: int,
    n_phases: Optional[int] = None,
    ratio: float = 0.64,
) -> List[int]:
    """Geometric-ish shrinking partition counts ending at 1.

    With the paper's ``start=20`` and default ratio this yields
    ``[20, 13, 8, 5, 3, 2, 1]`` — exactly the 7-phase schedule used in
    Section 4.5.

    Parameters
    ----------
    start:
        Partition count of the first phase.
    n_phases:
        If given, the schedule is resampled/truncated to this many phases
        (still strictly decreasing, still ending at 1).
    ratio:
        Multiplicative shrink factor per phase, in (0, 1).
    """
    check_positive("start", start)
    if not 0.0 < ratio < 1.0:
        raise ValueError(f"ratio must lie in (0, 1), got {ratio}")
    counts = [int(start)]
    while counts[-1] > 1:
        nxt = max(1, int(round(counts[-1] * ratio)))
        if nxt >= counts[-1]:
            nxt = counts[-1] - 1
        counts.append(nxt)
    if n_phases is not None:
        if n_phases < 1:
            raise ValueError(f"n_phases must be >= 1, got {n_phases}")
        if n_phases == 1:
            return [1]
        # Resample indices evenly over the generated schedule.
        idx = np.linspace(0, len(counts) - 1, n_phases)
        resampled = [counts[int(round(i))] for i in idx]
        # Enforce strict decrease and terminal 1.
        out: List[int] = []
        for c in resampled:
            if out and c >= out[-1]:
                c = max(1, out[-1] - 1)
            out.append(c)
        out[-1] = 1
        return out
    return counts


class PartitionedPopulation:
    """A population organized into partitions with local rankings.

    This is the data structure at the heart of SACGA: it knows, for each
    partition, which members are *locally superior* (the partition's own
    non-dominated feasible front) and maintains the local (rank, crowding)
    attributes used for local environmental selection.

    *kernel* selects the ranking implementation
    (``"blocked"``/``"reference"``, see :mod:`repro.core.kernels`);
    ``None`` uses the process default.  Both produce identical rankings.
    """

    def __init__(
        self,
        population: Population,
        grid: PartitionGrid,
        kernel: Optional[str] = None,
    ) -> None:
        self.population = population
        self.grid = grid
        self.kernel = kernel
        self._assign_partitions()
        self._rank_locally()

    # ----------------------------------------------------------- internals

    def _assign_partitions(self) -> None:
        pop = self.population
        if pop.size:
            pop.partition = self.grid.assign(pop.objectives)
        else:
            pop.partition = np.zeros(0, dtype=int)

    def _rank_locally(self) -> None:
        """Local constrained NDS + crowding within every partition.

        All partitions are ranked in one batched kernel call (the blocked
        kernel peels every partition's fronts from a single augmented
        sort; the reference kernel loops partitions as the original code
        did).
        """
        pop = self.population
        rank, crowding = local_rank_and_crowd(
            pop.objectives,
            pop.violation,
            pop.partition,
            self.grid.n_partitions,
            kernel=self.kernel,
        )
        pop.rank[:] = rank
        pop.crowding[:] = crowding

    # ----------------------------------------------------------- accessors

    def members_of(self, p: int) -> np.ndarray:
        """Indices of partition *p*'s members."""
        return np.flatnonzero(self.population.partition == p)

    def locally_superior(self, p: int) -> np.ndarray:
        """Indices of partition *p*'s local Pareto front (rank 0 members)."""
        members = self.members_of(p)
        return members[self.population.rank[members] == 0]

    def partitions_with_feasible(self) -> np.ndarray:
        """Partition ids that contain at least one constraint-satisfying member."""
        pop = self.population
        ids = np.unique(pop.partition[pop.feasible])
        return ids

    def occupancy(self) -> np.ndarray:
        """Member count per partition, shape ``(n_partitions,)``."""
        return np.bincount(
            self.population.partition, minlength=self.grid.n_partitions
        )

    # ----------------------------------------------------------- selection

    def local_truncate(
        self,
        capacity: int,
        live_partitions: Optional[Sequence[int]] = None,
    ) -> Population:
        """Environmental selection per partition (the "Local Selection" box).

        Each live partition keeps at most *capacity* members by local
        (rank, crowding) order.  Members of non-live partitions are
        dropped.  Returns the truncated population (re-partitioned and
        re-ranked by constructing a new :class:`PartitionedPopulation` is
        the caller's job — typically via :meth:`rebuild`).
        """
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        pop = self.population
        live = (
            set(int(p) for p in live_partitions)
            if live_partitions is not None
            else set(range(self.grid.n_partitions))
        )
        keep: List[np.ndarray] = []
        for p in range(self.grid.n_partitions):
            if p not in live:
                continue
            members = self.members_of(p)
            if members.size == 0:
                continue
            if members.size <= capacity:
                keep.append(members)
                continue
            order = np.lexsort(
                (-pop.crowding[members], pop.rank[members])
            )
            keep.append(members[order[:capacity]])
        if not keep:
            return pop.subset(np.zeros(0, dtype=int))
        return pop.subset(np.concatenate(keep))

    def rebuild(self, population: Population) -> "PartitionedPopulation":
        """New partitioned view of *population* under the same grid."""
        return PartitionedPopulation(population, self.grid, kernel=self.kernel)
