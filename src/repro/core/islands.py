"""Island-model multi-objective GA — the alternative the paper cites.

Paper §4.1: "A known method of diversity preservation is parallel
population GA with inter-population migration controlled in a tribe or
island based framework [7], which can be extended for Multi-objective
GA.  However, in this work, we try to establish that this objective can
be accomplished by a simple modification in the traditional
single-population GA."

This module provides that cited alternative so the claim can be tested:
:class:`IslandNSGA2` runs several independent NSGA-II sub-populations
(islands) with periodic ring migration of elite individuals, and reports
the global non-dominated front of the union.  Unlike SACGA's partitions
(slices of *objective* space), islands are unstructured — diversity
preservation comes only from isolation plus limited gene flow.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.base_optimizer import BaseOptimizer
from repro.core.individual import Population
from repro.core.kernels import rank_and_crowd, truncate_and_rank
from repro.core.operators import variation
from repro.core.selection import binary_tournament, shuffle_for_mating
from repro.problems.base import Problem
from repro.utils.rng import RngLike


class IslandNSGA2(BaseOptimizer):
    """Parallel-population NSGA-II with ring migration.

    Parameters
    ----------
    problem, population_size, crossover, mutation, seed:
        As in :class:`BaseOptimizer`; *population_size* is the **total**
        across islands (divided as evenly as possible).
    n_islands:
        Number of independent sub-populations.
    migration_interval:
        Every this many generations, each island sends its elite to the
        next island on the ring.
    n_migrants:
        Individuals sent per migration event (clamped to island size - 1).
    """

    algorithm_name = "Island-NSGA-II"

    def __init__(
        self,
        problem: Problem,
        population_size: int = 100,
        n_islands: int = 4,
        migration_interval: int = 10,
        n_migrants: int = 2,
        crossover=None,
        mutation=None,
        seed: RngLike = None,
        backend=None,
        kernel=None,
        metrics=None,
        tracer=None,
    ) -> None:
        super().__init__(
            problem,
            population_size=population_size,
            crossover=crossover,
            mutation=mutation,
            seed=seed,
            backend=backend,
            kernel=kernel,
            metrics=metrics,
            tracer=tracer,
        )
        if n_islands < 1:
            raise ValueError(f"n_islands must be >= 1, got {n_islands}")
        if population_size < 4 * n_islands:
            raise ValueError(
                f"population_size {population_size} too small for "
                f"{n_islands} islands (need >= 4 each)"
            )
        if migration_interval < 1:
            raise ValueError(
                f"migration_interval must be >= 1, got {migration_interval}"
            )
        if n_migrants < 1:
            raise ValueError(f"n_migrants must be >= 1, got {n_migrants}")
        self.n_islands = int(n_islands)
        self.migration_interval = int(migration_interval)
        self.n_migrants = int(n_migrants)

    # ----------------------------------------------------------- internals

    def _island_sizes(self) -> List[int]:
        base = self.population_size // self.n_islands
        sizes = [base] * self.n_islands
        for i in range(self.population_size - base * self.n_islands):
            sizes[i] += 1
        return sizes

    def _rank_and_crowd(self, pop: Population) -> None:
        rank, crowding = rank_and_crowd(
            pop.objectives, pop.violation, kernel=self.kernel
        )
        pop.rank[:] = rank
        pop.crowding[:] = crowding

    def _evolve_island(self, island: Population, size: int) -> Population:
        with self.tracer.span("select"):
            parents_idx = binary_tournament(
                island.rank, island.crowding, size, self.rng
            )
            parents_idx = shuffle_for_mating(parents_idx, self.rng)
        with self.tracer.span("mate"):
            offspring_x = variation(
                island.x[parents_idx],
                self.problem.lower,
                self.problem.upper,
                self.rng,
                self.crossover,
                self.mutation,
            )
        offspring = self._evaluate_population(offspring_x)
        merged = island.concat(offspring)
        with self.tracer.span("rank"):
            with self.tracer.span("kernel:truncate_and_rank"):
                keep, rank, crowding = truncate_and_rank(
                    merged.objectives, merged.violation, size, kernel=self.kernel
                )
            survivor = merged.subset(keep)
            survivor.rank[:] = rank
            survivor.crowding[:] = crowding
        return survivor

    def _migrate(self, islands: List[Population]) -> List[Population]:
        """Ring migration: each island's elite replaces the next's worst."""
        if len(islands) < 2:
            return islands
        elites = []
        for island in islands:
            k = min(self.n_migrants, island.size - 1)
            order = np.lexsort((-island.crowding, island.rank))
            elites.append(island.subset(order[:k]))
        out = []
        for i, island in enumerate(islands):
            incoming = elites[(i - 1) % len(islands)]
            k = incoming.size
            order = np.lexsort((-island.crowding, island.rank))
            keep = island.subset(order[: island.size - k])
            merged = keep.concat(incoming)
            self._rank_and_crowd(merged)
            out.append(merged)
        return out

    # ------------------------------------------------------ loop state hooks

    def _loop_init(
        self, n_generations: int, initial_x: Optional[np.ndarray]
    ) -> Dict[str, Any]:
        whole = self._initial_population(initial_x)
        sizes = self._island_sizes()
        islands: List[Population] = []
        start = 0
        for size in sizes:
            island = whole.subset(np.arange(start, start + size))
            self._rank_and_crowd(island)
            islands.append(island)
            start += size

        self.history.record(0, whole, self._n_evaluations, force=True)
        self.callbacks(0, whole)
        return {
            "generation": 0,
            "islands": islands,
            "sizes": sizes,
            "union": whole,
            "n_migrations": 0,
        }

    def _loop_step(self, state: Dict[str, Any], n_generations: int) -> None:
        gen = state["generation"] + 1
        islands = [
            self._evolve_island(island, size)
            for island, size in zip(state["islands"], state["sizes"])
        ]
        if gen % self.migration_interval == 0:
            with self.tracer.span("migrate"):
                islands = self._migrate(islands)
            state["n_migrations"] += 1
        union = islands[0]
        for island in islands[1:]:
            union = union.concat(island)
        state["islands"] = islands
        state["union"] = union
        state["generation"] = gen
        self.history.record(
            gen,
            union,
            self._n_evaluations,
            extras={"n_islands": float(self.n_islands)},
            force=(gen == n_generations),
        )
        self.callbacks(gen, union)

    def _loop_finish(
        self, state: Dict[str, Any], n_generations: int
    ) -> Tuple[Population, Dict]:
        union: Population = state["union"]
        self._rank_and_crowd(union)
        meta = {
            "n_islands": self.n_islands,
            "migration_interval": self.migration_interval,
            "n_migrants": self.n_migrants,
            "n_migrations": state["n_migrations"],
            "island_sizes": state["sizes"],
        }
        return union, meta
