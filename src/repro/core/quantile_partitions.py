"""Unequal (quantile-based) objective-space partitions — an extension.

The paper (Section 4.4) names the open problem directly: "A prominent
issue which affects the efficiency of SACGA is the problem of selecting
the optimal number of partitions with respect to each objective function
and determining their (generally, unequal) sizes.  They are dependent
upon the solution space and no method is known of finding them.  A
simplified approach may be to choose partitions of equal sizes."

This module implements the natural data-driven answer: partition edges
placed at *quantiles* of the current population's partitioning-objective
values, so every slice holds roughly the same number of individuals —
narrow slices where the population is dense, wide slices where it is
sparse.  :class:`QuantilePartitionGrid` is a drop-in replacement for
:class:`~repro.core.partitions.PartitionGrid` (same interface), and
:class:`AdaptiveSACGA` re-fits the edges periodically during evolution.

The ablation bench ``benchmarks/test_ablation_quantile_partitions.py``
compares equal-width vs quantile partitioning on the sizing problem.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.partitions import PartitionedPopulation
from repro.core.sacga import SACGA
from repro.utils.validation import check_positive


class QuantilePartitionGrid:
    """Partitioning with data-driven, generally unequal slice widths.

    Parameters
    ----------
    axis:
        Index of the partitioning objective.
    edges:
        Strictly increasing interior + outer boundaries,
        ``n_partitions + 1`` values.  Use :meth:`fit` to derive them from
        data.  Values outside ``[edges[0], edges[-1]]`` are clamped into
        the first/last slice, as in the equal-width grid.
    """

    def __init__(self, axis: int, edges: np.ndarray) -> None:
        if axis < 0:
            raise ValueError(f"axis must be >= 0, got {axis}")
        edges = np.asarray(edges, dtype=float).ravel()
        if edges.size < 2:
            raise ValueError("need at least 2 edges (one partition)")
        if np.any(np.diff(edges) <= 0):
            raise ValueError("edges must be strictly increasing")
        self.axis = int(axis)
        self._edges = edges

    # ------------------------------------------------------------- factory

    @classmethod
    def fit(
        cls,
        objectives: np.ndarray,
        axis: int,
        n_partitions: int,
        low: Optional[float] = None,
        high: Optional[float] = None,
    ) -> "QuantilePartitionGrid":
        """Edges at equal-occupancy quantiles of ``objectives[:, axis]``.

        *low*/*high* pin the outer boundaries (e.g. the physical 0-5 pF
        range); interior edges come from the data.  Duplicate quantiles
        (heavily clustered data) are spread minimally to keep the edges
        strictly increasing.
        """
        check_positive("n_partitions", n_partitions)
        objs = np.atleast_2d(np.asarray(objectives, dtype=float))
        if axis >= objs.shape[1]:
            raise ValueError(
                f"axis {axis} out of range for {objs.shape[1]} objectives"
            )
        values = objs[:, axis]
        if values.size == 0:
            raise ValueError("cannot fit quantile partitions to an empty set")
        lo = float(values.min() if low is None else low)
        hi = float(values.max() if high is None else high)
        if not hi > lo:
            hi = lo + 1.0
        qs = np.linspace(0.0, 1.0, n_partitions + 1)[1:-1]
        interior = np.quantile(np.clip(values, lo, hi), qs)
        edges = np.concatenate([[lo], interior, [hi]])
        # Repair duplicates from clustered data.
        min_step = (hi - lo) * 1e-9 + 1e-30
        for i in range(1, edges.size):
            if edges[i] <= edges[i - 1]:
                edges[i] = edges[i - 1] + max(min_step, (hi - lo) / 1e6)
        edges[-1] = max(edges[-1], hi)
        return cls(axis=axis, edges=edges)

    # ----------------------------------------------------------- interface

    @property
    def n_partitions(self) -> int:
        return self._edges.size - 1

    @property
    def edges(self) -> np.ndarray:
        return self._edges.copy()

    @property
    def low(self) -> float:
        return float(self._edges[0])

    @property
    def high(self) -> float:
        return float(self._edges[-1])

    def widths(self) -> np.ndarray:
        """Per-slice widths (generally unequal)."""
        return np.diff(self._edges)

    def assign(self, objectives: np.ndarray) -> np.ndarray:
        objs = np.atleast_2d(np.asarray(objectives, dtype=float))
        if self.axis >= objs.shape[1]:
            raise ValueError(
                f"axis {self.axis} out of range for {objs.shape[1]} objectives"
            )
        coord = objs[:, self.axis]
        idx = np.searchsorted(self._edges, coord, side="right") - 1
        return np.clip(idx, 0, self.n_partitions - 1)

    def with_partitions(self, n_partitions: int) -> "QuantilePartitionGrid":
        """Re-slice the same range into *n_partitions* equal-width slices.

        Without data there is no quantile information, so expansion falls
        back to equal widths over the same range (MESACGA phase change).
        """
        edges = np.linspace(self.low, self.high, n_partitions + 1)
        return QuantilePartitionGrid(axis=self.axis, edges=edges)

    def centers(self) -> np.ndarray:
        return 0.5 * (self._edges[:-1] + self._edges[1:])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QuantilePartitionGrid(axis={self.axis}, "
            f"n_partitions={self.n_partitions}, "
            f"range=[{self.low:.3g}, {self.high:.3g}])"
        )


class AdaptiveSACGA(SACGA):
    """SACGA that periodically re-fits quantile partition edges.

    Every ``refit_every`` Phase-II iterations, the partition edges are
    re-derived from the current population so that slices track where
    the front actually lives.  The outer range stays pinned to the
    original grid's ``[low, high]``.

    This addresses the paper's open problem of "determining their
    (generally, unequal) sizes" with the obvious population-quantile
    heuristic; the ablation bench quantifies what it buys.
    """

    algorithm_name = "AdaptiveSACGA"

    def __init__(self, *args, refit_every: int = 25, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if refit_every < 1:
            raise ValueError(f"refit_every must be >= 1, got {refit_every}")
        self.refit_every = int(refit_every)
        self._steps_since_refit = 0

    def _live_after_phase1(self, parted):
        """As SACGA, but every partition stays live: quantile slices are
        equal-occupancy by construction, so an id that is feasibility-free
        now may cover a completely different region after the next refit."""
        return list(range(self.grid.n_partitions))

    def _sync_loop_state(self, state):
        super()._sync_loop_state(state)
        state["refit_steps"] = self._steps_since_refit

    def _restore_loop_state(self, state):
        self._steps_since_refit = int(state.get("refit_steps", 0))
        super()._restore_loop_state(state)

    def _generation(self, parted, live, gate, gen_offset):
        out = super()._generation(parted, live, gate, gen_offset)
        if gate is None:
            return out
        self._steps_since_refit += 1
        if self._steps_since_refit >= self.refit_every and out.population.size:
            self._steps_since_refit = 0
            new_grid = QuantilePartitionGrid.fit(
                out.population.objectives,
                axis=self.grid.axis,
                n_partitions=self.grid.n_partitions,
                low=self.grid.low,
                high=self.grid.high,
            )
            self.grid = new_grid
            out = PartitionedPopulation(out.population, new_grid, kernel=self.kernel)
        return out
