"""Pluggable evaluation backends: serial, thread/process pools, memoization.

Every optimizer funnels fitness work through
:meth:`BaseOptimizer._evaluate_population`; this module makes that call
site pluggable.  A backend turns a ``(n, n_var)`` decision batch into an
:class:`~repro.problems.base.Evaluation` by calling
:meth:`Problem.evaluate_batch` — serial hands the whole generation to
one vectorized call, the pool backends chunk the matrix row-wise — and
keeps counters (:class:`BackendStats`) that the optimizers surface in
``OptimizationResult.metadata`` and the per-generation history.

Backends must be *semantics-preserving*: for a deterministic, row-wise
vectorized problem every backend returns bit-identical arrays to
:class:`SerialBackend` (the equivalence suite in
``tests/core/test_evaluation_backends.py`` locks this in).  Chunked
fan-out is therefore row-wise only — a problem whose per-row output
depended on batch composition would be a contract violation
(see the totality/determinism notes in ``docs/architecture.md``).

* :class:`SerialBackend` — direct call, the default; zero overhead.
* :class:`ThreadPoolBackend` — chunked rows on a thread pool; wins when
  evaluation releases the GIL (numpy-heavy batches) or blocks on I/O.
* :class:`ProcessPoolBackend` — chunked rows on a process pool; the
  problem must be picklable (asserted for every shipped problem in
  ``tests/problems/test_pickling.py``).
* :class:`SharedMemoryBackend` — a *persistent* process pool whose
  workers receive the pickled problem exactly once (pool initializer)
  and, per generation, only ``(segment, shape, row-slice)`` descriptors:
  the genome matrix and the objective/constraint/violation outputs
  travel through reusable ``multiprocessing.shared_memory`` arenas
  instead of the pickle pipe.
* :class:`CachedBackend` — composable LRU memoization of the inner
  backend, keyed by the raw bytes of each decision-vector row.

Pool backends degrade gracefully: any pool failure (broken process
pool, unpicklable problem, executor refusal, a ``kill -9``-ed worker)
falls back to serial evaluation for the batch, increments
``stats.fallbacks``, and stops retrying the pool for the backend's
lifetime.  The shared-memory backend additionally guarantees that its
``/dev/shm`` segments are unlinked on :meth:`close` *and* via
finalizers, so even a crashed run leaks nothing.
"""

from __future__ import annotations

import os
import pickle
import time
import uuid
import weakref
from collections import OrderedDict
from concurrent.futures import (
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait as _futures_wait,
)
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.problems.base import Evaluation, Problem

__all__ = [
    "BackendStats",
    "EvaluationBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "SharedMemoryBackend",
    "CachedBackend",
    "make_backend",
    "BACKEND_NAMES",
    "default_workers",
]

#: Names accepted by :func:`make_backend` (and the CLI ``--backend`` flag).
BACKEND_NAMES = ("serial", "thread", "process", "shm")

#: Prefix of every shared-memory segment this module creates.  Tests and
#: the CI leak assertion grep ``/dev/shm`` for it.
SHM_SEGMENT_PREFIX = "repro-shm-"


@dataclass
class BackendStats:
    """Counters accumulated by a backend across a run.

    Attributes
    ----------
    n_evaluations:
        Design rows whose objectives were actually computed (cache hits
        excluded).
    n_batches:
        ``evaluate`` calls served.
    eval_time:
        Cumulative wall-clock seconds spent inside ``evaluate``.
    cache_hits / cache_misses / cache_evictions:
        Memoization counters (only :class:`CachedBackend` moves these).
    fallbacks:
        Batches a pool backend had to evaluate serially after a pool
        failure.
    bytes_shared / bytes_pickled:
        IPC accounting for out-of-process backends.  ``bytes_shared``
        counts genome/result bytes moved through shared-memory segments;
        ``bytes_pickled`` counts payload bytes that crossed the pickle
        boundary (for :class:`ProcessPoolBackend`: the problem per task
        plus the genome and result arrays; for
        :class:`SharedMemoryBackend`: only the tiny per-generation
        descriptors — the one-time problem ship at pool creation is
        deliberately excluded so resumed runs reconcile exactly with
        uninterrupted ones).
    """

    n_evaluations: int = 0
    n_batches: int = 0
    eval_time: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    fallbacks: int = 0
    bytes_shared: int = 0
    bytes_pickled: int = 0
    # Wall-clock of the most recent batch only.  Deliberately NOT part of
    # as_dict(): it feeds the observability latency histograms, and adding
    # it to the serialized stats would break the byte-identical
    # result_to_dict(include_timing=False) contract.
    last_batch_time: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for result metadata / serialization.

        The IPC byte counters appear only once a backend has moved bytes:
        serial/thread runs keep the exact historical dict shape, which is
        what keeps the golden-front hashes in
        ``tests/core/golden_fronts.json`` (serialized *including* this
        dict) byte-stable across the transport refactor.
        """
        out = {
            "n_evaluations": int(self.n_evaluations),
            "n_batches": int(self.n_batches),
            "eval_time": float(self.eval_time),
            "cache_hits": int(self.cache_hits),
            "cache_misses": int(self.cache_misses),
            "cache_evictions": int(self.cache_evictions),
            "fallbacks": int(self.fallbacks),
        }
        if self.bytes_shared or self.bytes_pickled:
            out["bytes_shared"] = int(self.bytes_shared)
            out["bytes_pickled"] = int(self.bytes_pickled)
        return out


class EvaluationBackend:
    """Strategy interface: turn a decision batch into an Evaluation.

    Subclasses implement :meth:`_evaluate_batch`; the public
    :meth:`evaluate` adds timing and batch accounting so every backend
    reports uniform stats.
    """

    name = "backend"

    def __init__(self) -> None:
        self.stats = BackendStats()

    # ------------------------------------------------------------------ API

    def evaluate(self, problem: Problem, x: np.ndarray) -> Evaluation:
        """Evaluate ``(n, n_var)`` decision vectors under *problem*."""
        arr = np.atleast_2d(np.asarray(x, dtype=float))
        start = time.perf_counter()
        evaluation = self._evaluate_batch(problem, arr)
        self.stats.last_batch_time = time.perf_counter() - start
        self.stats.eval_time += self.stats.last_batch_time
        self.stats.n_batches += 1
        return evaluation

    def _evaluate_batch(self, problem: Problem, x: np.ndarray) -> Evaluation:
        raise NotImplementedError

    def close(self) -> None:
        """Release worker pools (no-op for poolless backends)."""

    def describe(self) -> Dict[str, Any]:
        """Configuration echo for result metadata."""
        return {"name": self.name}

    # ---------------------------------------------------------- conveniences

    def __enter__(self) -> "EvaluationBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SerialBackend(EvaluationBackend):
    """Direct in-process evaluation — the historical default behavior."""

    name = "serial"

    def _evaluate_batch(self, problem: Problem, x: np.ndarray) -> Evaluation:
        evaluation = problem.evaluate_batch(x)
        self.stats.n_evaluations += x.shape[0]
        return evaluation


def _evaluate_rows(problem: Problem, x: np.ndarray) -> Evaluation:
    """Module-level chunk worker (must be picklable for process pools)."""
    return problem.evaluate_batch(x)


def _merge_evaluations(chunks: List[Evaluation]) -> Evaluation:
    if len(chunks) == 1:
        return chunks[0]
    return Evaluation(
        objectives=np.vstack([c.objectives for c in chunks]),
        constraints=np.vstack([c.constraints for c in chunks]),
        violation=np.concatenate([c.violation for c in chunks]),
    )


def default_workers() -> int:
    """Default pool size: one less than the cores *available to us*.

    Containerized/CI runs are routinely pinned to a subset of the host's
    cores; sizing the pool from ``os.cpu_count()`` there oversubscribes
    the pinned set.  ``os.sched_getaffinity`` reports the actual CPU
    mask where available (Linux); elsewhere fall back to ``cpu_count``.
    """
    try:
        available = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # non-Linux platforms
        available = os.cpu_count() or 2
    return max(1, available - 1)


class _PoolBackend(EvaluationBackend):
    """Shared machinery for thread/process fan-out.

    Rows are split into ``n_workers`` contiguous chunks (or
    ``chunk_size``-row chunks when configured) and dispatched in order;
    results are merged back in submission order, so the output is
    bit-identical to a single serial call for row-wise problems.
    """

    def __init__(
        self,
        n_workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        super().__init__()
        self.n_workers = int(n_workers) if n_workers else default_workers()
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = None if chunk_size is None else int(chunk_size)
        self._executor: Optional[Executor] = None
        self._broken = False

    # ------------------------------------------------------------ internals

    def _make_executor(self) -> Executor:
        raise NotImplementedError

    def _chunks(self, x: np.ndarray) -> List[np.ndarray]:
        n = x.shape[0]
        if self.chunk_size is not None:
            bounds = list(range(0, n, self.chunk_size)) + [n]
            return [x[a:b] for a, b in zip(bounds[:-1], bounds[1:]) if b > a]
        return [c for c in np.array_split(x, min(self.n_workers, n)) if c.size]

    def _counts_in_parent(self) -> bool:
        """Whether worker calls already bump ``problem._n_evaluations``."""
        return True

    def _evaluate_batch(self, problem: Problem, x: np.ndarray) -> Evaluation:
        if x.shape[0] == 0:
            return problem.evaluate_batch(x)
        if not self._broken:
            try:
                evaluation = self._fan_out(problem, x)
                self.stats.n_evaluations += x.shape[0]
                return evaluation
            except Exception:
                # Any pool-layer failure (broken pool, pickling error,
                # shutdown race) must not kill the optimization run.
                self._broken = True
                self.stats.fallbacks += 1
                self.close()
        evaluation = problem.evaluate_batch(x)
        self.stats.n_evaluations += x.shape[0]
        return evaluation

    def _fan_out(self, problem: Problem, x: np.ndarray) -> Evaluation:
        if self._executor is None:
            self._executor = self._make_executor()
        chunks = self._chunks(x)
        if len(chunks) == 1 and self._counts_in_parent():
            return _evaluate_rows(problem, chunks[0])
        futures: List[Future] = []
        try:
            for chunk in chunks:
                futures.append(
                    self._executor.submit(_evaluate_rows, problem, chunk)
                )
            merged = _merge_evaluations([f.result() for f in futures])
        except Exception:
            self._reconcile_failed_fan_out(problem, futures, chunks)
            raise
        if self._counts_in_parent():
            self._account_fan_out(problem, x, chunks, merged)
        else:
            # Workers ran in another process; mirror the count locally so
            # problem.n_evaluations matches what serial would report.
            problem._n_evaluations += x.shape[0]
            self._account_fan_out(problem, x, chunks, merged)
        return merged

    def _reconcile_failed_fan_out(
        self, problem: Problem, futures: List[Future], chunks: List[np.ndarray]
    ) -> None:
        """Undo partial in-process evaluation counts after a failed fan-out.

        When an in-process (thread) fan-out dies after some chunks already
        completed, those chunks have bumped ``problem._n_evaluations``; the
        serial retry then re-evaluates the *whole* batch, so without this
        reconciliation the completed rows would be counted twice.  Settle
        every future (cancelled ones never ran) and subtract the rows of
        the chunks that finished.  Out-of-process backends mirror the count
        only on success, so they need no repair.
        """
        if not self._counts_in_parent():
            return
        for future in futures:
            future.cancel()
        _futures_wait(futures)
        completed = sum(
            chunk.shape[0]
            for future, chunk in zip(futures, chunks)
            if future.done()
            and not future.cancelled()
            and future.exception() is None
        )
        if completed:
            problem._n_evaluations -= completed

    def _account_fan_out(
        self,
        problem: Problem,
        x: np.ndarray,
        chunks: List[np.ndarray],
        merged: Evaluation,
    ) -> None:
        """IPC accounting hook; in-process backends move no bytes."""

    # ------------------------------------------------------------------ API

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "n_workers": self.n_workers,
            "chunk_size": self.chunk_size,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n_workers={self.n_workers})"


class ThreadPoolBackend(_PoolBackend):
    """Row-chunked fan-out over a thread pool.

    Parameters
    ----------
    n_workers:
        Pool size; defaults to ``cpu_count - 1``.
    chunk_size:
        Rows per task; defaults to splitting the batch evenly across
        workers.
    """

    name = "thread"

    def _make_executor(self) -> Executor:
        return ThreadPoolExecutor(
            max_workers=self.n_workers, thread_name_prefix="repro-eval"
        )


class ProcessPoolBackend(_PoolBackend):
    """Row-chunked fan-out over a process pool.

    The problem instance is pickled to the workers with every task, so
    ``Problem`` subclasses must be picklable (all shipped problems are;
    see ``tests/problems/test_pickling.py``).  Worker-side evaluation
    counters stay in the workers — the parent mirrors the row count so
    ``problem.n_evaluations`` agrees with serial runs.

    ``stats.bytes_pickled`` accounts the payload bytes crossing the
    pickle boundary each generation: one problem pickle per task plus
    the genome chunks out and the objective/constraint/violation arrays
    back (executor framing overhead is not counted).  At 10^4-10^5
    individuals this recurring cost is what :class:`SharedMemoryBackend`
    eliminates.
    """

    name = "process"

    def __init__(
        self,
        n_workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        super().__init__(n_workers=n_workers, chunk_size=chunk_size)
        self._problem_blob_size: Optional[int] = None
        self._blob_problem: Optional[Problem] = None

    def _make_executor(self) -> Executor:
        return ProcessPoolExecutor(max_workers=self.n_workers)

    def _counts_in_parent(self) -> bool:
        return False

    def _account_fan_out(
        self,
        problem: Problem,
        x: np.ndarray,
        chunks: List[np.ndarray],
        merged: Evaluation,
    ) -> None:
        if self._blob_problem is not problem or self._problem_blob_size is None:
            try:
                self._problem_blob_size = len(pickle.dumps(problem))
            except Exception:  # unpicklable problems die before this point
                self._problem_blob_size = 0
            self._blob_problem = problem
        self.stats.bytes_pickled += (
            len(chunks) * self._problem_blob_size
            + x.nbytes
            + merged.objectives.nbytes
            + merged.constraints.nbytes
            + merged.violation.nbytes
        )


# --------------------------------------------------------------------------
# Shared-memory transport
#
# Worker-side state for SharedMemoryBackend.  Each worker process holds the
# unpickled problem (shipped exactly once, through the pool initializer) and
# a small cache of attached segments so a generation's tasks cost zero
# serialization beyond their (segment, shape, row-slice) descriptor.

_SHM_WORKER_PROBLEM: Optional[Problem] = None
_SHM_WORKER_SEGMENTS: "OrderedDict[str, shared_memory.SharedMemory]" = OrderedDict()
#: Attachment-cache bound; double buffering needs 4 live segments, the
#: headroom covers arena growth generations.
_SHM_WORKER_SEGMENT_CAP = 8


def _shm_untrack(shm: shared_memory.SharedMemory) -> None:
    """Repair attach-side resource-tracker registration in a worker.

    ``SharedMemory`` registers every segment with the resource tracker,
    including plain attachments (bpo-38119).  Attachments are not
    ownership — the parent (sole creator) is responsible for the unlink —
    so what the worker must do depends on whose tracker it registered
    with:

    * ``fork`` workers inherit the parent's tracker process, so the
      attach-register was an idempotent no-op on the parent's entry and
      must be left alone (unregistering here would steal the parent's
      registration and make its eventual unlink error).
    * ``spawn`` workers run their *own* tracker, which would warn about
      and unlink the parent's segments when the worker exits — there the
      spurious registration must be removed.
    """
    try:
        import multiprocessing

        if multiprocessing.get_start_method() == "fork":
            return
        from multiprocessing import resource_tracker

        resource_tracker.unregister(getattr(shm, "_name", shm.name), "shared_memory")
    except Exception:  # pragma: no cover - tracker variations across versions
        pass


def _shm_worker_init(problem_blob: bytes) -> None:
    """Pool initializer: unpickle the problem once per worker process."""
    global _SHM_WORKER_PROBLEM
    _SHM_WORKER_PROBLEM = pickle.loads(problem_blob)


def _shm_attach(name: str) -> shared_memory.SharedMemory:
    """Attach to a named segment, with a bounded per-worker cache."""
    shm = _SHM_WORKER_SEGMENTS.get(name)
    if shm is not None:
        _SHM_WORKER_SEGMENTS.move_to_end(name)
        return shm
    shm = shared_memory.SharedMemory(name=name)
    _shm_untrack(shm)
    while len(_SHM_WORKER_SEGMENTS) >= _SHM_WORKER_SEGMENT_CAP:
        _, stale = _SHM_WORKER_SEGMENTS.popitem(last=False)
        try:
            stale.close()
        except BufferError:  # pragma: no cover - no views outlive a task
            pass
    _SHM_WORKER_SEGMENTS[name] = shm
    return shm


def _shm_out_views(
    buf, n_rows: int, n_obj: int, n_con: int
) -> Tuple[np.ndarray, Optional[np.ndarray], np.ndarray]:
    """(objectives, constraints, violation) views over one output block.

    The block is laid out contiguously: ``(n, n_obj)`` objectives, then
    ``(n, n_con)`` constraints, then the ``(n,)`` violation vector, all
    float64.  ``constraints`` is ``None`` for unconstrained problems.
    """
    itemsize = 8
    obj = np.ndarray((n_rows, n_obj), dtype=np.float64, buffer=buf, offset=0)
    cons_off = n_rows * n_obj * itemsize
    cons = None
    if n_con:
        cons = np.ndarray(
            (n_rows, n_con), dtype=np.float64, buffer=buf, offset=cons_off
        )
    vio_off = cons_off + n_rows * n_con * itemsize
    vio = np.ndarray((n_rows,), dtype=np.float64, buffer=buf, offset=vio_off)
    return obj, cons, vio


def _shm_eval_slice(desc: Tuple[str, str, int, int, int, int, int, int]) -> int:
    """Worker task: evaluate one row slice through shared memory.

    *desc* is ``(in_name, out_name, n_rows, n_var, n_obj, n_con, start,
    stop)``.  The genome rows are read from a read-only view of the input
    segment; objectives/constraints/violation are written straight into
    the preallocated output block at the same row indices, so the parent
    assembles submission order with a single copy.  Returns the row count
    (the parent cross-checks coverage).
    """
    problem = _SHM_WORKER_PROBLEM
    if problem is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("shm worker was not initialized with a problem")
    in_name, out_name, n_rows, n_var, n_obj, n_con, start, stop = desc
    shm_in = _shm_attach(in_name)
    shm_out = _shm_attach(out_name)
    rows = np.ndarray(
        (n_rows, n_var), dtype=np.float64, buffer=shm_in.buf
    )[start:stop]
    rows.flags.writeable = False
    evaluation = problem.evaluate_batch(rows)
    obj, cons, vio = _shm_out_views(shm_out.buf, n_rows, n_obj, n_con)
    obj[start:stop] = evaluation.objectives
    if cons is not None:
        cons[start:stop] = evaluation.constraints
    vio[start:stop] = evaluation.violation
    del rows, obj, cons, vio
    return stop - start


def _unlink_segments(names: List[str]) -> None:
    """Best-effort unlink of parent-owned segments (close() and finalizer).

    Shared with :func:`weakref.finalize` so a backend that is dropped
    without ``close()`` — or an interpreter dying mid-run — still removes
    its ``/dev/shm`` entries.  Mutates *names* in place so double cleanup
    is a no-op.
    """
    while names:
        name = names.pop()
        try:
            seg = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        except Exception:  # pragma: no cover - races at interpreter exit
            continue
        try:
            seg.close()
        except BufferError:  # pragma: no cover
            pass
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - unlink race
            pass


@dataclass
class _Arena:
    """One double-buffer slot: an input segment and an output segment."""

    inp: Optional[shared_memory.SharedMemory] = None
    out: Optional[shared_memory.SharedMemory] = None

    def segments(self) -> List[shared_memory.SharedMemory]:
        return [seg for seg in (self.inp, self.out) if seg is not None]


class SharedMemoryBackend(_PoolBackend):
    """Zero-copy evaluation transport over a persistent process pool.

    Where :class:`ProcessPoolBackend` pickles the problem and every
    genome chunk on every generation, this backend

    * ships the pickled problem to the workers exactly **once**, through
      the pool initializer;
    * per generation writes the ``(N, D)`` float64 genome matrix into a
      shared-memory *arena* (double-buffered, grown geometrically, and
      reused across generations) and dispatches only ``(segment_name,
      shape, row_slice)`` descriptors;
    * has workers evaluate their row slice through
      ``problem.evaluate_batch`` on a read-only view and write
      objectives/constraints/violation into a preallocated shared output
      block, which the parent assembles in submission order — fronts are
      **bit-identical** to :class:`SerialBackend` for the row-wise
      problems the backend contract requires.

    Double buffering alternates two arenas so the next generation's
    input is never written over a block a straggling task from the
    previous dispatch could still be reading.  ``stats.bytes_shared``
    accounts the genome/result bytes that moved through the segments;
    ``stats.bytes_pickled`` only the per-generation descriptors.

    Failure handling follows the pool contract: any transport failure
    (broken pool, unpicklable problem, a ``kill -9``-ed worker) flips
    the backend to serial fallback (``stats.fallbacks``), and
    :meth:`close` plus finalizers guarantee no ``/dev/shm`` segment
    outlives the backend — even when the run crashes.
    """

    name = "shm"

    def __init__(
        self,
        n_workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        super().__init__(n_workers=n_workers, chunk_size=chunk_size)
        self._arenas = (_Arena(), _Arena())
        self._arena_toggle = 0
        self._pool_problem: Optional[Problem] = None
        # The names list is shared with the finalizer: growing an arena
        # appends, unlinking removes, so whatever is live at GC /
        # interpreter exit gets cleaned up even without close().
        self._segment_names: List[str] = []
        self._finalizer = weakref.finalize(
            self, _unlink_segments, self._segment_names
        )

    # ------------------------------------------------------------ pool/arena

    def _ensure_pool(self, problem: Problem) -> None:
        if self._executor is not None and self._pool_problem is problem:
            return
        if self._executor is not None:
            # A different problem instance: workers hold the wrong pickle.
            self._executor.shutdown(wait=True)
            self._executor = None
        blob = pickle.dumps(problem)
        self._executor = ProcessPoolExecutor(
            max_workers=self.n_workers,
            initializer=_shm_worker_init,
            initargs=(blob,),
        )
        self._pool_problem = problem

    def _grow_segment(
        self, seg: Optional[shared_memory.SharedMemory], need: int
    ) -> shared_memory.SharedMemory:
        """Return a segment of capacity >= *need*, growing geometrically."""
        need = max(8, int(need))
        if seg is not None and seg.size >= need:
            return seg
        capacity = 8 if seg is None else max(8, seg.size)
        while capacity < need:
            capacity *= 2
        if seg is not None:
            self._discard_segment(seg)
        name = f"{SHM_SEGMENT_PREFIX}{os.getpid()}-{uuid.uuid4().hex[:8]}"
        fresh = shared_memory.SharedMemory(name=name, create=True, size=capacity)
        self._segment_names.append(fresh.name)
        return fresh

    def _discard_segment(self, seg: shared_memory.SharedMemory) -> None:
        try:
            self._segment_names.remove(seg.name)
        except ValueError:
            pass
        try:
            seg.close()
        except BufferError:  # pragma: no cover - views are batch-scoped
            pass
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def _slice_bounds(self, n: int) -> List[Tuple[int, int]]:
        """Row-slice bounds mirroring :meth:`_PoolBackend._chunks`."""
        if self.chunk_size is not None:
            edges = list(range(0, n, self.chunk_size)) + [n]
            return [(a, b) for a, b in zip(edges[:-1], edges[1:]) if b > a]
        parts = np.array_split(np.arange(n), min(self.n_workers, n))
        return [(int(p[0]), int(p[-1]) + 1) for p in parts if p.size]

    # -------------------------------------------------------------- fan-out

    def _counts_in_parent(self) -> bool:
        return False

    def _fan_out(self, problem: Problem, x: np.ndarray) -> Evaluation:
        self._ensure_pool(problem)
        n, n_var = x.shape
        n_obj, n_con = int(problem.n_obj), int(problem.n_con)
        arena = self._arenas[self._arena_toggle]
        self._arena_toggle ^= 1
        in_bytes = n * n_var * 8
        out_bytes = n * (n_obj + n_con + 1) * 8
        arena.inp = self._grow_segment(arena.inp, in_bytes)
        arena.out = self._grow_segment(arena.out, out_bytes)
        # Publish the genome matrix: the generation's single input copy.
        staged = np.ndarray((n, n_var), dtype=np.float64, buffer=arena.inp.buf)
        np.copyto(staged, x)
        descriptors = [
            (arena.inp.name, arena.out.name, n, n_var, n_obj, n_con, a, b)
            for a, b in self._slice_bounds(n)
        ]
        futures = [
            self._executor.submit(_shm_eval_slice, desc) for desc in descriptors
        ]
        covered = sum(future.result() for future in futures)
        if covered != n:  # pragma: no cover - descriptor bug tripwire
            raise RuntimeError(
                f"shm workers covered {covered} rows of {n}"
            )
        obj, cons, vio = _shm_out_views(arena.out.buf, n, n_obj, n_con)
        evaluation = Evaluation(
            objectives=obj.copy(),
            constraints=(
                cons.copy() if cons is not None else np.zeros((n, 0))
            ),
            violation=vio.copy(),
        )
        # Views over reusable segments must not escape this call.
        del staged, obj, cons, vio
        problem._n_evaluations += n
        self.stats.bytes_shared += in_bytes + out_bytes
        self.stats.bytes_pickled += len(pickle.dumps(descriptors))
        return evaluation

    # ------------------------------------------------------------------ API

    def close(self) -> None:
        super().close()
        for arena in self._arenas:
            for seg in arena.segments():
                self._discard_segment(seg)
            arena.inp = arena.out = None
        self._pool_problem = None

    def describe(self) -> Dict[str, Any]:
        desc = super().describe()
        desc["transport"] = "shared_memory"
        return desc


@dataclass
class _CacheEntry:
    objectives: np.ndarray
    constraints: np.ndarray
    violation: float


class CachedBackend(EvaluationBackend):
    """Bounded-LRU memoization wrapped around any inner backend.

    Rows are keyed by their canonical float64 bytes, so only *exact*
    repeats hit — which is precisely what elitist GAs produce (survivors
    re-entering later merges, duplicate offspring after clipping).
    "Canonical" means the genome row is first converted to a contiguous
    float64 buffer with negative zeros normalized to ``+0.0``: ``-0.0``
    and ``0.0`` are the same design point but have different raw bytes,
    and keying on the raw bytes made the batch and scalar evaluation
    paths miss each other's entries whenever clipping or mutation
    produced a signed zero (the batch/scalar harness surfaced this).
    Results for hit rows are bit-identical to recomputation because the
    Problem contract requires deterministic, row-decomposable
    evaluation.

    Parameters
    ----------
    inner:
        Backend performing the actual evaluations (default serial).
    max_size:
        Maximum cached rows; least-recently-used entries are evicted.
    """

    name = "cached"

    def __init__(
        self,
        inner: Optional[EvaluationBackend] = None,
        max_size: int = 100_000,
    ) -> None:
        super().__init__()
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        self.inner = inner or SerialBackend()
        self.max_size = int(max_size)
        self._cache: "OrderedDict[bytes, _CacheEntry]" = OrderedDict()

    # ------------------------------------------------------------ internals

    @staticmethod
    def _keys(x: np.ndarray) -> List[bytes]:
        # Adding 0.0 yields a fresh contiguous buffer with -0.0 flushed
        # to +0.0 (IEEE: -0.0 + 0.0 == +0.0), so numerically identical
        # genome rows from the batch and scalar paths map to one key.
        # One tobytes() on the whole matrix, then stride-sized slices:
        # the per-row ndarray.tobytes() loop paid a C-call plus buffer
        # allocation per row, and bytes slicing is ~3x cheaper at
        # population scale.  Keys are byte-identical to the row loop
        # because the matrix is contiguous row-major.
        rows = np.ascontiguousarray(x, dtype=float) + 0.0
        buf = rows.tobytes()
        stride = rows.shape[1] * rows.itemsize
        return [buf[i * stride : (i + 1) * stride] for i in range(rows.shape[0])]

    def _evaluate_batch(self, problem: Problem, x: np.ndarray) -> Evaluation:
        if x.shape[0] == 0:
            return problem.evaluate_batch(x)
        keys = self._keys(x)
        batch: Dict[bytes, _CacheEntry] = {}
        missing: "OrderedDict[bytes, int]" = OrderedDict()
        for i, key in enumerate(keys):
            if key in self._cache:
                self._cache.move_to_end(key)
                batch[key] = self._cache[key]
                self.stats.cache_hits += 1
            elif key in missing:
                # Duplicate row inside one batch: one computation serves
                # both, so the repeat counts as a hit.
                self.stats.cache_hits += 1
            else:
                missing[key] = i
                self.stats.cache_misses += 1
        if missing:
            fresh = self.inner.evaluate(problem, x[list(missing.values())])
            self.stats.n_evaluations += len(missing)
            for j, key in enumerate(missing):
                entry = _CacheEntry(
                    objectives=fresh.objectives[j].copy(),
                    constraints=fresh.constraints[j].copy(),
                    violation=float(fresh.violation[j]),
                )
                batch[key] = entry
                self._cache[key] = entry
        entries = [batch[key] for key in keys]
        # Evict only after assembly so an over-capacity batch still
        # returns every row it computed.
        while len(self._cache) > self.max_size:
            self._cache.popitem(last=False)
            self.stats.cache_evictions += 1
        return Evaluation(
            objectives=np.stack([e.objectives for e in entries]),
            constraints=np.stack([e.constraints for e in entries]),
            violation=np.array([e.violation for e in entries]),
        )

    # ------------------------------------------------------------------ API

    def clear(self) -> None:
        """Drop all cached rows (counters are kept)."""
        self._cache.clear()

    @property
    def size(self) -> int:
        return len(self._cache)

    def close(self) -> None:
        self.inner.close()

    def describe(self) -> Dict[str, Any]:
        desc = {"name": self.name, "max_size": self.max_size}
        desc["inner"] = self.inner.describe()
        return desc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CachedBackend({self.inner!r}, max_size={self.max_size})"


def make_backend(
    name: Optional[str] = None,
    workers: Optional[int] = None,
    cache_size: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> EvaluationBackend:
    """Build a backend from CLI/config-style knobs.

    *name* is one of :data:`BACKEND_NAMES` (``None`` means serial);
    *cache_size* wraps the pool (or serial) backend in a
    :class:`CachedBackend` of that capacity.  ``None`` means no cache; a
    zero or negative capacity is a configuration error and raises (it
    used to be silently treated as "no cache", hiding misconfigured
    sweeps).
    """
    key = (name or "serial").strip().lower()
    if key == "serial":
        backend: EvaluationBackend = SerialBackend()
    elif key == "thread":
        backend = ThreadPoolBackend(n_workers=workers, chunk_size=chunk_size)
    elif key == "process":
        backend = ProcessPoolBackend(n_workers=workers, chunk_size=chunk_size)
    elif key == "shm":
        backend = SharedMemoryBackend(n_workers=workers, chunk_size=chunk_size)
    else:
        raise KeyError(
            f"unknown backend {name!r} (want one of {', '.join(BACKEND_NAMES)})"
        )
    if cache_size is not None:
        if cache_size <= 0:
            raise ValueError(
                f"cache_size must be a positive capacity, got {cache_size} "
                "(omit it entirely to disable caching)"
            )
        backend = CachedBackend(backend, max_size=cache_size)
    return backend
