"""Pluggable evaluation backends: serial, thread/process pools, memoization.

Every optimizer funnels fitness work through
:meth:`BaseOptimizer._evaluate_population`; this module makes that call
site pluggable.  A backend turns a ``(n, n_var)`` decision batch into an
:class:`~repro.problems.base.Evaluation` by calling
:meth:`Problem.evaluate_batch` — serial hands the whole generation to
one vectorized call, the pool backends chunk the matrix row-wise — and
keeps counters (:class:`BackendStats`) that the optimizers surface in
``OptimizationResult.metadata`` and the per-generation history.

Backends must be *semantics-preserving*: for a deterministic, row-wise
vectorized problem every backend returns bit-identical arrays to
:class:`SerialBackend` (the equivalence suite in
``tests/core/test_evaluation_backends.py`` locks this in).  Chunked
fan-out is therefore row-wise only — a problem whose per-row output
depended on batch composition would be a contract violation
(see the totality/determinism notes in ``docs/architecture.md``).

* :class:`SerialBackend` — direct call, the default; zero overhead.
* :class:`ThreadPoolBackend` — chunked rows on a thread pool; wins when
  evaluation releases the GIL (numpy-heavy batches) or blocks on I/O.
* :class:`ProcessPoolBackend` — chunked rows on a process pool; the
  problem must be picklable (asserted for every shipped problem in
  ``tests/problems/test_pickling.py``).
* :class:`CachedBackend` — composable LRU memoization of the inner
  backend, keyed by the raw bytes of each decision-vector row.

Pool backends degrade gracefully: any pool failure (broken process
pool, unpicklable problem, executor refusal) falls back to serial
evaluation for the batch, increments ``stats.fallbacks``, and stops
retrying the pool for the backend's lifetime.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.problems.base import Evaluation, Problem

__all__ = [
    "BackendStats",
    "EvaluationBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "CachedBackend",
    "make_backend",
    "BACKEND_NAMES",
]

#: Names accepted by :func:`make_backend` (and the CLI ``--backend`` flag).
BACKEND_NAMES = ("serial", "thread", "process")


@dataclass
class BackendStats:
    """Counters accumulated by a backend across a run.

    Attributes
    ----------
    n_evaluations:
        Design rows whose objectives were actually computed (cache hits
        excluded).
    n_batches:
        ``evaluate`` calls served.
    eval_time:
        Cumulative wall-clock seconds spent inside ``evaluate``.
    cache_hits / cache_misses / cache_evictions:
        Memoization counters (only :class:`CachedBackend` moves these).
    fallbacks:
        Batches a pool backend had to evaluate serially after a pool
        failure.
    """

    n_evaluations: int = 0
    n_batches: int = 0
    eval_time: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    fallbacks: int = 0
    # Wall-clock of the most recent batch only.  Deliberately NOT part of
    # as_dict(): it feeds the observability latency histograms, and adding
    # it to the serialized stats would break the byte-identical
    # result_to_dict(include_timing=False) contract.
    last_batch_time: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for result metadata / serialization."""
        return {
            "n_evaluations": int(self.n_evaluations),
            "n_batches": int(self.n_batches),
            "eval_time": float(self.eval_time),
            "cache_hits": int(self.cache_hits),
            "cache_misses": int(self.cache_misses),
            "cache_evictions": int(self.cache_evictions),
            "fallbacks": int(self.fallbacks),
        }


class EvaluationBackend:
    """Strategy interface: turn a decision batch into an Evaluation.

    Subclasses implement :meth:`_evaluate_batch`; the public
    :meth:`evaluate` adds timing and batch accounting so every backend
    reports uniform stats.
    """

    name = "backend"

    def __init__(self) -> None:
        self.stats = BackendStats()

    # ------------------------------------------------------------------ API

    def evaluate(self, problem: Problem, x: np.ndarray) -> Evaluation:
        """Evaluate ``(n, n_var)`` decision vectors under *problem*."""
        arr = np.atleast_2d(np.asarray(x, dtype=float))
        start = time.perf_counter()
        evaluation = self._evaluate_batch(problem, arr)
        self.stats.last_batch_time = time.perf_counter() - start
        self.stats.eval_time += self.stats.last_batch_time
        self.stats.n_batches += 1
        return evaluation

    def _evaluate_batch(self, problem: Problem, x: np.ndarray) -> Evaluation:
        raise NotImplementedError

    def close(self) -> None:
        """Release worker pools (no-op for poolless backends)."""

    def describe(self) -> Dict[str, Any]:
        """Configuration echo for result metadata."""
        return {"name": self.name}

    # ---------------------------------------------------------- conveniences

    def __enter__(self) -> "EvaluationBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SerialBackend(EvaluationBackend):
    """Direct in-process evaluation — the historical default behavior."""

    name = "serial"

    def _evaluate_batch(self, problem: Problem, x: np.ndarray) -> Evaluation:
        evaluation = problem.evaluate_batch(x)
        self.stats.n_evaluations += x.shape[0]
        return evaluation


def _evaluate_rows(problem: Problem, x: np.ndarray) -> Evaluation:
    """Module-level chunk worker (must be picklable for process pools)."""
    return problem.evaluate_batch(x)


def _merge_evaluations(chunks: List[Evaluation]) -> Evaluation:
    if len(chunks) == 1:
        return chunks[0]
    return Evaluation(
        objectives=np.vstack([c.objectives for c in chunks]),
        constraints=np.vstack([c.constraints for c in chunks]),
        violation=np.concatenate([c.violation for c in chunks]),
    )


def default_workers() -> int:
    return max(1, (os.cpu_count() or 2) - 1)


class _PoolBackend(EvaluationBackend):
    """Shared machinery for thread/process fan-out.

    Rows are split into ``n_workers`` contiguous chunks (or
    ``chunk_size``-row chunks when configured) and dispatched in order;
    results are merged back in submission order, so the output is
    bit-identical to a single serial call for row-wise problems.
    """

    def __init__(
        self,
        n_workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        super().__init__()
        self.n_workers = int(n_workers) if n_workers else default_workers()
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = None if chunk_size is None else int(chunk_size)
        self._executor: Optional[Executor] = None
        self._broken = False

    # ------------------------------------------------------------ internals

    def _make_executor(self) -> Executor:
        raise NotImplementedError

    def _chunks(self, x: np.ndarray) -> List[np.ndarray]:
        n = x.shape[0]
        if self.chunk_size is not None:
            bounds = list(range(0, n, self.chunk_size)) + [n]
            return [x[a:b] for a, b in zip(bounds[:-1], bounds[1:]) if b > a]
        return [c for c in np.array_split(x, min(self.n_workers, n)) if c.size]

    def _counts_in_parent(self) -> bool:
        """Whether worker calls already bump ``problem._n_evaluations``."""
        return True

    def _evaluate_batch(self, problem: Problem, x: np.ndarray) -> Evaluation:
        if x.shape[0] == 0:
            return problem.evaluate_batch(x)
        if not self._broken:
            try:
                evaluation = self._fan_out(problem, x)
                self.stats.n_evaluations += x.shape[0]
                return evaluation
            except Exception:
                # Any pool-layer failure (broken pool, pickling error,
                # shutdown race) must not kill the optimization run.
                self._broken = True
                self.stats.fallbacks += 1
                self.close()
        evaluation = problem.evaluate_batch(x)
        self.stats.n_evaluations += x.shape[0]
        return evaluation

    def _fan_out(self, problem: Problem, x: np.ndarray) -> Evaluation:
        if self._executor is None:
            self._executor = self._make_executor()
        chunks = self._chunks(x)
        if len(chunks) == 1 and self._counts_in_parent():
            return _evaluate_rows(problem, chunks[0])
        futures = [
            self._executor.submit(_evaluate_rows, problem, chunk)
            for chunk in chunks
        ]
        merged = _merge_evaluations([f.result() for f in futures])
        if not self._counts_in_parent():
            # Workers ran in another process; mirror the count locally so
            # problem.n_evaluations matches what serial would report.
            problem._n_evaluations += x.shape[0]
        return merged

    # ------------------------------------------------------------------ API

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "n_workers": self.n_workers,
            "chunk_size": self.chunk_size,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n_workers={self.n_workers})"


class ThreadPoolBackend(_PoolBackend):
    """Row-chunked fan-out over a thread pool.

    Parameters
    ----------
    n_workers:
        Pool size; defaults to ``cpu_count - 1``.
    chunk_size:
        Rows per task; defaults to splitting the batch evenly across
        workers.
    """

    name = "thread"

    def _make_executor(self) -> Executor:
        return ThreadPoolExecutor(
            max_workers=self.n_workers, thread_name_prefix="repro-eval"
        )


class ProcessPoolBackend(_PoolBackend):
    """Row-chunked fan-out over a process pool.

    The problem instance is pickled to the workers with every task, so
    ``Problem`` subclasses must be picklable (all shipped problems are;
    see ``tests/problems/test_pickling.py``).  Worker-side evaluation
    counters stay in the workers — the parent mirrors the row count so
    ``problem.n_evaluations`` agrees with serial runs.
    """

    name = "process"

    def _make_executor(self) -> Executor:
        return ProcessPoolExecutor(max_workers=self.n_workers)

    def _counts_in_parent(self) -> bool:
        return False


@dataclass
class _CacheEntry:
    objectives: np.ndarray
    constraints: np.ndarray
    violation: float


class CachedBackend(EvaluationBackend):
    """Bounded-LRU memoization wrapped around any inner backend.

    Rows are keyed by their canonical float64 bytes, so only *exact*
    repeats hit — which is precisely what elitist GAs produce (survivors
    re-entering later merges, duplicate offspring after clipping).
    "Canonical" means the genome row is first converted to a contiguous
    float64 buffer with negative zeros normalized to ``+0.0``: ``-0.0``
    and ``0.0`` are the same design point but have different raw bytes,
    and keying on the raw bytes made the batch and scalar evaluation
    paths miss each other's entries whenever clipping or mutation
    produced a signed zero (the batch/scalar harness surfaced this).
    Results for hit rows are bit-identical to recomputation because the
    Problem contract requires deterministic, row-decomposable
    evaluation.

    Parameters
    ----------
    inner:
        Backend performing the actual evaluations (default serial).
    max_size:
        Maximum cached rows; least-recently-used entries are evicted.
    """

    name = "cached"

    def __init__(
        self,
        inner: Optional[EvaluationBackend] = None,
        max_size: int = 100_000,
    ) -> None:
        super().__init__()
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        self.inner = inner or SerialBackend()
        self.max_size = int(max_size)
        self._cache: "OrderedDict[bytes, _CacheEntry]" = OrderedDict()

    # ------------------------------------------------------------ internals

    @staticmethod
    def _keys(x: np.ndarray) -> List[bytes]:
        # Adding 0.0 yields a fresh contiguous buffer with -0.0 flushed
        # to +0.0 (IEEE: -0.0 + 0.0 == +0.0), so numerically identical
        # genome rows from the batch and scalar paths map to one key.
        rows = np.ascontiguousarray(x, dtype=float) + 0.0
        return [rows[i].tobytes() for i in range(rows.shape[0])]

    def _evaluate_batch(self, problem: Problem, x: np.ndarray) -> Evaluation:
        if x.shape[0] == 0:
            return problem.evaluate_batch(x)
        keys = self._keys(x)
        batch: Dict[bytes, _CacheEntry] = {}
        missing: "OrderedDict[bytes, int]" = OrderedDict()
        for i, key in enumerate(keys):
            if key in self._cache:
                self._cache.move_to_end(key)
                batch[key] = self._cache[key]
                self.stats.cache_hits += 1
            elif key in missing:
                # Duplicate row inside one batch: one computation serves
                # both, so the repeat counts as a hit.
                self.stats.cache_hits += 1
            else:
                missing[key] = i
                self.stats.cache_misses += 1
        if missing:
            fresh = self.inner.evaluate(problem, x[list(missing.values())])
            self.stats.n_evaluations += len(missing)
            for j, key in enumerate(missing):
                entry = _CacheEntry(
                    objectives=fresh.objectives[j].copy(),
                    constraints=fresh.constraints[j].copy(),
                    violation=float(fresh.violation[j]),
                )
                batch[key] = entry
                self._cache[key] = entry
        entries = [batch[key] for key in keys]
        # Evict only after assembly so an over-capacity batch still
        # returns every row it computed.
        while len(self._cache) > self.max_size:
            self._cache.popitem(last=False)
            self.stats.cache_evictions += 1
        return Evaluation(
            objectives=np.stack([e.objectives for e in entries]),
            constraints=np.stack([e.constraints for e in entries]),
            violation=np.array([e.violation for e in entries]),
        )

    # ------------------------------------------------------------------ API

    def clear(self) -> None:
        """Drop all cached rows (counters are kept)."""
        self._cache.clear()

    @property
    def size(self) -> int:
        return len(self._cache)

    def close(self) -> None:
        self.inner.close()

    def describe(self) -> Dict[str, Any]:
        desc = {"name": self.name, "max_size": self.max_size}
        desc["inner"] = self.inner.describe()
        return desc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CachedBackend({self.inner!r}, max_size={self.max_size})"


def make_backend(
    name: Optional[str] = None,
    workers: Optional[int] = None,
    cache_size: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> EvaluationBackend:
    """Build a backend from CLI/config-style knobs.

    *name* is one of :data:`BACKEND_NAMES` (``None`` means serial);
    *cache_size* wraps the pool (or serial) backend in a
    :class:`CachedBackend` of that capacity.  ``None`` means no cache; a
    zero or negative capacity is a configuration error and raises (it
    used to be silently treated as "no cache", hiding misconfigured
    sweeps).
    """
    key = (name or "serial").strip().lower()
    if key == "serial":
        backend: EvaluationBackend = SerialBackend()
    elif key == "thread":
        backend = ThreadPoolBackend(n_workers=workers, chunk_size=chunk_size)
    elif key == "process":
        backend = ProcessPoolBackend(n_workers=workers, chunk_size=chunk_size)
    else:
        raise KeyError(
            f"unknown backend {name!r} (want one of {', '.join(BACKEND_NAMES)})"
        )
    if cache_size is not None:
        if cache_size <= 0:
            raise ValueError(
                f"cache_size must be a positive capacity, got {cache_size} "
                "(omit it entirely to disable caching)"
            )
        backend = CachedBackend(backend, max_size=cache_size)
    return backend
