"""Population container (struct-of-arrays).

The GA layers operate on a :class:`Population`: parallel numpy arrays for
decision vectors, objectives, constraints and derived per-individual
attributes (rank, crowding distance, partition index).  Struct-of-arrays
keeps every operation vectorized; individuals are only materialized as
lightweight views when a caller needs one (:class:`IndividualView`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.problems.base import Evaluation, Problem

UNRANKED = -1
NO_PARTITION = -1


@dataclass(frozen=True)
class IndividualView:
    """Read-only view of one population member."""

    x: np.ndarray
    objectives: np.ndarray
    constraints: np.ndarray
    violation: float
    rank: int
    crowding: float
    partition: int

    @property
    def feasible(self) -> bool:
        return self.violation <= 0.0


class Population:
    """A fixed-size batch of evaluated candidate designs.

    Storage is struct-of-arrays: the genome matrix ``x`` and the
    ``objectives`` / ``constraints`` / ``violation`` matrices are
    private C-contiguous float64 copies (the constructor copies, and
    ``ndarray.copy`` defaults to C order), so whole generations feed the
    vectorized kernels and :meth:`Problem.evaluate_batch` without any
    per-individual marshalling, and row views (``pop.x[i]``) hash to the
    same memoization keys as the batch they came from.

    Parameters
    ----------
    x:
        ``(n, n_var)`` decision vectors.
    evaluation:
        Matching :class:`Evaluation` (objectives/constraints/violation).

    Derived attributes (``rank``, ``crowding``, ``partition``) start
    unset (:data:`UNRANKED` / ``0.0`` / :data:`NO_PARTITION`) and are
    filled in by the sorting and partitioning machinery.
    """

    def __init__(self, x: np.ndarray, evaluation: Evaluation) -> None:
        self.x = np.atleast_2d(np.asarray(x, dtype=float)).copy()
        if self.x.shape[0] != evaluation.n_points:
            raise ValueError(
                f"x has {self.x.shape[0]} rows but evaluation has "
                f"{evaluation.n_points} points"
            )
        self.objectives = evaluation.objectives.copy()
        self.constraints = evaluation.constraints.copy()
        self.violation = evaluation.violation.copy()
        n = self.size
        self.rank = np.full(n, UNRANKED, dtype=int)
        self.crowding = np.zeros(n, dtype=float)
        self.partition = np.full(n, NO_PARTITION, dtype=int)

    # ------------------------------------------------------------ factories

    @classmethod
    def random(
        cls, problem: Problem, size: int, rng: np.random.Generator
    ) -> "Population":
        """Uniformly sample and evaluate *size* designs of *problem*."""
        x = problem.sample(size, rng)
        return cls(x, problem.evaluate_batch(x))

    @classmethod
    def from_x(cls, problem: Problem, x: np.ndarray) -> "Population":
        """Evaluate the given decision vectors under *problem*."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        return cls(x, problem.evaluate_batch(x))

    @classmethod
    def empty(cls, n_var: int, n_obj: int, n_con: int) -> "Population":
        """An empty population with the given dimensionality."""
        ev = Evaluation(
            objectives=np.zeros((0, n_obj)), constraints=np.zeros((0, n_con))
        )
        return cls(np.zeros((0, n_var)), ev)

    # ------------------------------------------------------------ protocol

    @property
    def size(self) -> int:
        return self.x.shape[0]

    def __len__(self) -> int:
        return self.size

    @property
    def n_var(self) -> int:
        return self.x.shape[1]

    @property
    def n_obj(self) -> int:
        return self.objectives.shape[1]

    @property
    def n_con(self) -> int:
        return self.constraints.shape[1]

    @property
    def feasible(self) -> np.ndarray:
        return self.violation <= 0.0

    def __getitem__(self, i: int) -> IndividualView:
        return IndividualView(
            x=self.x[i],
            objectives=self.objectives[i],
            constraints=self.constraints[i],
            violation=float(self.violation[i]),
            rank=int(self.rank[i]),
            crowding=float(self.crowding[i]),
            partition=int(self.partition[i]),
        )

    def __iter__(self) -> Iterator[IndividualView]:
        for i in range(self.size):
            yield self[i]

    # ---------------------------------------------------------- operations

    def subset(self, indices: Sequence[int]) -> "Population":
        """New population holding rows *indices* (derived attrs carried over).

        *indices* is either integer row positions or a boolean mask of
        length ``size``.  A boolean mask must match the population size —
        previously it was silently cast to the 0/1 integer rows.
        """
        idx = np.asarray(indices)
        if idx.dtype == bool:
            if idx.shape != (self.size,):
                raise ValueError(
                    f"boolean mask shape {idx.shape} does not match "
                    f"population size {self.size}"
                )
            idx = np.flatnonzero(idx)
        else:
            idx = idx.astype(int)
        ev = Evaluation(
            objectives=self.objectives[idx],
            constraints=self.constraints[idx],
            violation=self.violation[idx],
        )
        out = Population(self.x[idx], ev)
        out.rank = self.rank[idx].copy()
        out.crowding = self.crowding[idx].copy()
        out.partition = self.partition[idx].copy()
        return out

    def concat(self, other: "Population") -> "Population":
        """Concatenate two populations (derived attrs carried over)."""
        if other.size == 0:
            return self.copy()
        if self.size == 0:
            return other.copy()
        if self.n_var != other.n_var or self.n_obj != other.n_obj:
            raise ValueError("cannot concatenate populations of differing shape")
        ev = Evaluation(
            objectives=np.vstack([self.objectives, other.objectives]),
            constraints=np.vstack([self.constraints, other.constraints]),
            violation=np.concatenate([self.violation, other.violation]),
        )
        out = Population(np.vstack([self.x, other.x]), ev)
        out.rank = np.concatenate([self.rank, other.rank])
        out.crowding = np.concatenate([self.crowding, other.crowding])
        out.partition = np.concatenate([self.partition, other.partition])
        return out

    def copy(self) -> "Population":
        return self.subset(np.arange(self.size))

    def evaluation(self) -> Evaluation:
        """Bundle the objective/constraint arrays back into an Evaluation."""
        return Evaluation(
            objectives=self.objectives.copy(),
            constraints=self.constraints.copy(),
            violation=self.violation.copy(),
        )

    def pareto_front_indices(self) -> np.ndarray:
        """Indices of the (constraint-aware) non-dominated members."""
        from repro.utils.pareto import pareto_mask

        return np.flatnonzero(pareto_mask(self.objectives, self.violation))

    def pareto_front(self) -> "Population":
        """The (constraint-aware) non-dominated subset as a new population."""
        return self.subset(self.pareto_front_indices())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        n_feas = int(self.feasible.sum())
        return (
            f"Population(size={self.size}, n_var={self.n_var}, "
            f"n_obj={self.n_obj}, feasible={n_feas})"
        )
