"""Mating-selection schemes.

Two schemes are used by the algorithms in this library:

* :func:`binary_tournament` — NSGA-II's crowded tournament (rank first,
  crowding distance as tie-breaker).
* :func:`linear_rank_selection` — the "rank-based selection ... from the
  entire population" that the paper's Section 4.3 prescribes for building
  the Global Mating Pool in SACGA/MESACGA.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels import crowded_compare
from repro.utils.validation import check_in_range


def binary_tournament(
    rank: np.ndarray,
    crowding: np.ndarray,
    n_select: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Crowded binary tournament; returns *n_select* winner indices.

    Lower rank wins; equal ranks are broken by larger crowding distance;
    remaining ties are broken uniformly at random.
    """
    rank = np.asarray(rank)
    crowding = np.asarray(crowding, dtype=float)
    n = rank.size
    if n == 0:
        raise ValueError("cannot select from an empty population")
    if n_select < 0:
        raise ValueError(f"n_select must be non-negative, got {n_select}")
    i = rng.integers(0, n, size=n_select)
    j = rng.integers(0, n, size=n_select)
    coin = rng.random(n_select) < 0.5
    pick_i = crowded_compare(rank[i], crowding[i], rank[j], crowding[j], coin)
    return np.where(pick_i, i, j)


def linear_rank_selection(
    rank: np.ndarray,
    n_select: int,
    rng: np.random.Generator,
    selection_pressure: float = 1.8,
) -> np.ndarray:
    """Linear ranking selection over the whole population.

    Individuals are ordered best-to-worst by *rank* (ties keep stable
    order); the best gets expected ``selection_pressure`` copies, the
    worst ``2 - selection_pressure`` (Baker's linear ranking).  Sampling
    is with replacement via the cumulative distribution.

    Parameters
    ----------
    rank:
        Smaller = better.  Any integer or float key works; only the
        ordering matters.
    selection_pressure:
        In ``[1, 2]``.  1.0 degenerates to uniform selection.
    """
    check_in_range("selection_pressure", selection_pressure, 1.0, 2.0)
    rank = np.asarray(rank, dtype=float)
    n = rank.size
    if n == 0:
        raise ValueError("cannot select from an empty population")
    if n_select < 0:
        raise ValueError(f"n_select must be non-negative, got {n_select}")
    if n == 1:
        return np.zeros(n_select, dtype=int)
    order = np.argsort(rank, kind="stable")  # best first
    position = np.empty(n, dtype=float)
    position[order] = np.arange(n, dtype=float)
    sp = selection_pressure
    weights = sp - (2.0 * sp - 2.0) * position / (n - 1.0)
    weights = np.maximum(weights, 0.0)
    total = weights.sum()
    if total <= 0:
        probs = np.full(n, 1.0 / n)
    else:
        probs = weights / total
    return rng.choice(n, size=n_select, replace=True, p=probs)


def shuffle_for_mating(indices: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Random permutation so that pairwise crossover pairs are unbiased."""
    idx = np.asarray(indices)
    return idx[rng.permutation(idx.size)]
