"""Shared scaffolding for the three optimizers (NSGA-II, SACGA, MESACGA).

The base class owns everything that is identical across algorithms —
operator configuration, RNG plumbing, history recording, timing, result
packaging — so that the algorithm subclasses contain only the logic the
paper actually differentiates.

The generational loop is structured as an explicit, picklable **state
machine** rather than a monolithic ``for`` loop: subclasses implement
``_loop_init`` (build the initial loop state), ``_loop_step`` (advance
exactly one generation, recording history and firing callbacks), and
``_loop_finish`` (package the final population + metadata).  Everything
the loop needs between generations lives in the state dict, which is
what makes crash-safe checkpointing possible: ``capture_checkpoint``
snapshots the state (plus RNG, history, counters) at any generation
boundary, and ``run(..., resume_from=ckpt)`` restores it so a resumed
run is byte-identical to an uninterrupted one (see
:mod:`repro.core.checkpoint`).
"""

from __future__ import annotations

import copy
import time
from typing import Any, Dict, Optional, Union

import numpy as np

from repro.core.callbacks import CallbackList, HistoryRecorder, ProgressCallback
from repro.core.checkpoint import CHECKPOINT_VERSION, load_checkpoint
from repro.core.evaluation import EvaluationBackend, SerialBackend
from repro.core.individual import Population
from repro.core.kernels import resolve_kernel
from repro.core.operators import PolynomialMutation, SBXCrossover
from repro.core.results import OptimizationResult, extract_feasible_front
from repro.obs.registry import NULL_METRICS
from repro.obs.spans import NULL_TRACER
from repro.problems.base import Problem
from repro.utils.rng import RngLike, as_rng


class BaseOptimizer:
    """Common machinery for generational multi-objective GAs.

    Parameters
    ----------
    problem:
        The (vectorized) problem to optimize.
    population_size:
        Number of individuals maintained per generation.
    crossover, mutation:
        Variation operators; defaults are SBX(eta=15, p=0.9) and
        polynomial mutation(eta=20, p=1/n_var) as in NSGA-II practice.
    seed:
        Anything :func:`repro.utils.rng.as_rng` accepts.
    backend:
        An :class:`repro.core.evaluation.EvaluationBackend` that carries
        out fitness evaluation (default: serial, the historical
        behavior).  Backends are semantics-preserving — the choice
        affects wall time and the stats echoed into result metadata,
        never the optimization trajectory.
    kernel:
        Dominance/selection kernel (``"blocked"`` or ``"reference"``,
        see :mod:`repro.core.kernels`); ``None`` uses the process
        default.  Kernels are semantics-preserving: both produce
        bit-identical fronts, so the choice is deliberately *not*
        echoed into result metadata — serialized results stay
        byte-comparable across kernels.
    metrics:
        A :class:`repro.obs.registry.MetricsRegistry` receiving
        evaluation counters and latency histograms; ``None`` (the
        default) installs the true no-op
        :data:`~repro.obs.registry.NULL_METRICS`.  Instrument handles
        are resolved here, once — the hot loop never calls the registry.
    tracer:
        A :class:`repro.obs.spans.SpanTracer` recording the hierarchical
        wall-clock profile (run → generation → evaluate →
        backend:<name>); ``None`` installs the no-op
        :data:`~repro.obs.spans.NULL_TRACER`.  Instrumentation is
        read-only: instrumented runs are byte-identical to
        uninstrumented ones.
    """

    algorithm_name = "BaseOptimizer"

    def __init__(
        self,
        problem: Problem,
        population_size: int = 100,
        crossover: Optional[SBXCrossover] = None,
        mutation: Optional[PolynomialMutation] = None,
        seed: RngLike = None,
        backend: Optional[EvaluationBackend] = None,
        kernel: Optional[str] = None,
        metrics=None,
        tracer=None,
    ) -> None:
        if population_size < 4:
            raise ValueError(
                f"population_size must be >= 4, got {population_size}"
            )
        self.problem = problem
        self.population_size = int(population_size)
        self.crossover = crossover or SBXCrossover()
        self.mutation = mutation or PolynomialMutation()
        self.rng = as_rng(seed)
        self.backend = backend or SerialBackend()
        self.kernel = resolve_kernel(kernel)
        self.metrics = NULL_METRICS if metrics is None else metrics
        self.tracer = NULL_TRACER if tracer is None else tracer
        # Instrument handles and span names are fixed at construction so
        # the generational loop touches no registry state (nor formats
        # strings) — with NULL_METRICS every update is a shared no-op.
        self._backend_span_name = f"backend:{self.backend.name}"
        self._m_eval_batches = self.metrics.counter(
            "repro_backend_batches_total", "Evaluation batches served"
        )
        self._m_eval_rows = self.metrics.counter(
            "repro_backend_rows_total", "Design rows submitted for evaluation"
        )
        self._m_batch_seconds = self.metrics.histogram(
            "repro_backend_batch_seconds",
            "Wall-clock seconds per evaluation batch",
        )
        self._backend_stats_prev = self.backend.stats.as_dict()
        self.history = HistoryRecorder()
        self.history.add_extras_source(self._backend_extras)
        self.callbacks = CallbackList()
        self._n_evaluations = 0
        self._stop_requested = False
        self._loop_state: Optional[Dict[str, Any]] = None
        self._target_generations: Optional[int] = None
        self._run_started: Optional[float] = None
        self._prior_wall_time = 0.0

    # ------------------------------------------------------------- plumbing

    def add_callback(self, callback: ProgressCallback) -> None:
        self.callbacks.append(callback)

    def request_stop(self) -> None:
        """Ask the optimizer to stop after the current generation.

        Intended for termination-criterion callbacks (see
        :class:`repro.core.callbacks.StagnationStop`); the run returns
        normally with everything produced so far.
        """
        self._stop_requested = True

    @property
    def stop_requested(self) -> bool:
        return self._stop_requested

    def _evaluate_population(self, x: np.ndarray) -> Population:
        x = np.atleast_2d(np.asarray(x, dtype=float))
        with self.tracer.span("evaluate"):
            with self.tracer.span(self._backend_span_name):
                evaluation = self.backend.evaluate(self.problem, x)
        pop = Population(x, evaluation)
        self._n_evaluations += pop.size
        self._m_eval_batches.inc()
        self._m_eval_rows.inc(pop.size)
        self._m_batch_seconds.observe(self.backend.stats.last_batch_time)
        return pop

    def _backend_extras(self) -> Dict[str, float]:
        """Per-generation backend telemetry merged into history records.

        Reports the *delta* since the previous recorded generation (the
        backend counters themselves are cumulative across the run), so
        each record carries the evaluation cost of its own generation —
        or of the interval since the last record when the recorder's
        cadence skips generations.
        """
        stats = self.backend.stats
        prev = self._backend_stats_prev
        extras = {"eval_time_s": float(stats.eval_time - prev["eval_time"])}
        if stats.cache_hits or stats.cache_misses:
            extras["cache_hits"] = float(stats.cache_hits - prev["cache_hits"])
            extras["cache_misses"] = float(
                stats.cache_misses - prev["cache_misses"]
            )
        self._backend_stats_prev = stats.as_dict()
        return extras

    def _initial_population(
        self, initial_x: Optional[np.ndarray] = None
    ) -> Population:
        if initial_x is not None:
            x = np.atleast_2d(np.asarray(initial_x, dtype=float))
            if x.shape[0] != self.population_size:
                raise ValueError(
                    f"initial population has {x.shape[0]} rows, expected "
                    f"{self.population_size}"
                )
            return self._evaluate_population(self.problem.clip(x))
        x = self.problem.sample(self.population_size, self.rng)
        return self._evaluate_population(x)

    def _package_result(
        self,
        population: Population,
        n_generations: int,
        wall_time: float,
        metadata: Optional[Dict] = None,
    ) -> OptimizationResult:
        front_x, front_f = extract_feasible_front(population)
        meta = {
            "population_size": self.population_size,
            "crossover": repr(self.crossover),
            "mutation": repr(self.mutation),
            "backend": self.backend.describe(),
            "backend_stats": self.backend.stats.as_dict(),
        }
        meta.update(metadata or {})
        return OptimizationResult(
            algorithm=self.algorithm_name,
            problem_name=self.problem.name,
            population=population,
            front_x=front_x,
            front_objectives=front_f,
            n_generations=n_generations,
            n_evaluations=self._n_evaluations,
            wall_time=wall_time,
            history=list(self.history.records),
            metadata=meta,
        )

    # ---------------------------------------------------------------- run

    def run(
        self,
        n_generations: int,
        initial_x: Optional[np.ndarray] = None,
        resume_from: Union[None, str, Dict[str, Any]] = None,
    ) -> OptimizationResult:
        """Execute the optimizer for *n_generations* and package the result.

        Parameters
        ----------
        n_generations:
            Total generation budget of the run (when resuming: of the
            *whole* run, not of the remainder).
        initial_x:
            Optional explicit initial population (fresh runs only).
        resume_from:
            A checkpoint path or already-loaded payload produced by
            :class:`repro.core.checkpoint.CheckpointCallback` /
            :meth:`capture_checkpoint`.  The optimizer must be configured
            identically to the one that wrote the checkpoint (same
            algorithm, problem, population size, operators); the stored
            RNG state makes the original seed irrelevant.  The resumed
            run continues at the checkpointed generation and produces a
            result byte-identical (modulo wall-clock fields) to an
            uninterrupted run.
        """
        if n_generations < 0:
            raise ValueError(f"n_generations must be >= 0, got {n_generations}")
        if resume_from is not None and initial_x is not None:
            raise ValueError("initial_x cannot be combined with resume_from")
        self._run_started = time.perf_counter()
        self._target_generations = int(n_generations)
        with self.tracer.span("run"):
            if resume_from is not None:
                self._prior_wall_time = self._restore_checkpoint(
                    resume_from, n_generations
                )
            else:
                self.history.clear()
                self._n_evaluations = 0
                self._stop_requested = False
                self._prior_wall_time = 0.0
                # Telemetry deltas are relative to the run start, even when
                # the backend (and its cumulative counters) is reused
                # across runs.
                self._backend_stats_prev = self.backend.stats.as_dict()
                self.problem.reset_evaluation_counter()
                self._loop_state = self._loop_init(n_generations, initial_x)
            state = self._loop_state
            while not self._loop_done(state, n_generations):
                if self._stop_requested:
                    break
                with self.tracer.span("generation"):
                    self._loop_step(state, n_generations)
            elapsed = self._prior_wall_time + (
                time.perf_counter() - self._run_started
            )
            population, meta = self._loop_finish(state, n_generations)
        return self._package_result(population, n_generations, elapsed, meta)

    # ----------------------------------------------------- loop state hooks

    def _loop_init(
        self, n_generations: int, initial_x: Optional[np.ndarray]
    ) -> Dict[str, Any]:
        """Evaluate generation 0 and return the initial loop state.

        The returned dict must contain at least ``"generation"`` and be
        picklable — it *is* the checkpointable core of the run.
        """
        raise NotImplementedError

    def _loop_done(self, state: Dict[str, Any], n_generations: int) -> bool:
        return state["generation"] >= n_generations

    def _loop_step(self, state: Dict[str, Any], n_generations: int) -> None:
        """Advance exactly one generation (record history, fire callbacks)."""
        raise NotImplementedError

    def _loop_finish(
        self, state: Dict[str, Any], n_generations: int
    ) -> "tuple[Population, Dict]":
        """Final (population, metadata) once the loop has ended."""
        raise NotImplementedError

    # --------------------------------------------------------- checkpointing

    def capture_checkpoint(
        self, extra: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """Snapshot the in-flight run as a picklable checkpoint payload.

        Only meaningful between generations of an active :meth:`run`
        (progress callbacks fire at exactly those boundaries).  The loop
        state is deep-copied, so the payload stays frozen even if it is
        held in memory while the run continues.
        """
        if self._loop_state is None or self._target_generations is None:
            raise RuntimeError(
                "capture_checkpoint() is only valid during run() — attach a "
                "CheckpointCallback instead of calling it directly"
            )
        elapsed = self._prior_wall_time
        if self._run_started is not None:
            elapsed += time.perf_counter() - self._run_started
        return {
            "version": CHECKPOINT_VERSION,
            "algorithm": self.algorithm_name,
            "problem": self.problem.name,
            "n_generations": int(self._target_generations),
            "generation": int(self._loop_state["generation"]),
            "rng_state": self.rng.bit_generator.state,
            "loop_state": copy.deepcopy(self._loop_state),
            "history": list(self.history.records),
            "n_evaluations": int(self._n_evaluations),
            "problem_evaluations": int(self.problem.n_evaluations),
            "backend_stats": self.backend.stats.as_dict(),
            "backend_stats_prev": dict(self._backend_stats_prev),
            "wall_time": float(elapsed),
            "extra": dict(extra or {}),
        }

    def _restore_checkpoint(
        self,
        source: Union[str, Dict[str, Any]],
        n_generations: int,
    ) -> float:
        """Rehydrate counters, RNG, history and loop state from a checkpoint.

        Returns the wall-clock seconds already spent before the crash
        (folded into the resumed result's ``wall_time``).
        """
        payload = load_checkpoint(source)
        if payload["algorithm"] != self.algorithm_name:
            raise ValueError(
                f"checkpoint was written by {payload['algorithm']!r}, "
                f"cannot resume with {self.algorithm_name!r}"
            )
        if payload["problem"] != self.problem.name:
            raise ValueError(
                f"checkpoint was written for problem {payload['problem']!r}, "
                f"cannot resume on {self.problem.name!r}"
            )
        if int(payload["n_generations"]) != int(n_generations):
            raise ValueError(
                f"checkpoint targets {payload['n_generations']} generations; "
                f"resume with the same budget (got {n_generations}) so the "
                "annealing schedules and history cadence stay consistent"
            )
        self.rng.bit_generator.state = payload["rng_state"]
        self.history.records = list(payload["history"])
        self._n_evaluations = int(payload["n_evaluations"])
        self._stop_requested = False
        self._backend_stats_prev = dict(payload["backend_stats_prev"])
        self._restore_backend_stats(payload["backend_stats"])
        self.problem.reset_evaluation_counter(int(payload["problem_evaluations"]))
        self._restore_loop_state(copy.deepcopy(payload["loop_state"]))
        return float(payload["wall_time"])

    def _restore_backend_stats(self, saved: Dict[str, Any]) -> None:
        """Carry cumulative backend counters across the crash boundary, so
        the final ``backend_stats`` metadata matches an uninterrupted run."""
        stats = self.backend.stats
        for field in (
            "n_evaluations",
            "n_batches",
            "cache_hits",
            "cache_misses",
            "cache_evictions",
            "fallbacks",
            "bytes_shared",
            "bytes_pickled",
        ):
            if field in saved:
                setattr(stats, field, int(saved[field]))
        if "eval_time" in saved:
            stats.eval_time = float(saved["eval_time"])

    def _restore_loop_state(self, state: Dict[str, Any]) -> None:
        """Install a checkpointed loop state (subclasses may sync derived
        attributes, e.g. MESACGA's phase-expanded partition grid)."""
        self._loop_state = state
