"""Shared scaffolding for the three optimizers (NSGA-II, SACGA, MESACGA).

The base class owns everything that is identical across algorithms —
operator configuration, RNG plumbing, history recording, timing, result
packaging — so that the algorithm subclasses contain only the logic the
paper actually differentiates.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

import numpy as np

from repro.core.callbacks import CallbackList, HistoryRecorder, ProgressCallback
from repro.core.evaluation import EvaluationBackend, SerialBackend
from repro.core.individual import Population
from repro.core.kernels import resolve_kernel
from repro.core.operators import PolynomialMutation, SBXCrossover
from repro.core.results import OptimizationResult, extract_feasible_front
from repro.problems.base import Problem
from repro.utils.rng import RngLike, as_rng


class BaseOptimizer:
    """Common machinery for generational multi-objective GAs.

    Parameters
    ----------
    problem:
        The (vectorized) problem to optimize.
    population_size:
        Number of individuals maintained per generation.
    crossover, mutation:
        Variation operators; defaults are SBX(eta=15, p=0.9) and
        polynomial mutation(eta=20, p=1/n_var) as in NSGA-II practice.
    seed:
        Anything :func:`repro.utils.rng.as_rng` accepts.
    backend:
        An :class:`repro.core.evaluation.EvaluationBackend` that carries
        out fitness evaluation (default: serial, the historical
        behavior).  Backends are semantics-preserving — the choice
        affects wall time and the stats echoed into result metadata,
        never the optimization trajectory.
    kernel:
        Dominance/selection kernel (``"blocked"`` or ``"reference"``,
        see :mod:`repro.core.kernels`); ``None`` uses the process
        default.  Kernels are semantics-preserving: both produce
        bit-identical fronts, so the choice is deliberately *not*
        echoed into result metadata — serialized results stay
        byte-comparable across kernels.
    """

    algorithm_name = "BaseOptimizer"

    def __init__(
        self,
        problem: Problem,
        population_size: int = 100,
        crossover: Optional[SBXCrossover] = None,
        mutation: Optional[PolynomialMutation] = None,
        seed: RngLike = None,
        backend: Optional[EvaluationBackend] = None,
        kernel: Optional[str] = None,
    ) -> None:
        if population_size < 4:
            raise ValueError(
                f"population_size must be >= 4, got {population_size}"
            )
        self.problem = problem
        self.population_size = int(population_size)
        self.crossover = crossover or SBXCrossover()
        self.mutation = mutation or PolynomialMutation()
        self.rng = as_rng(seed)
        self.backend = backend or SerialBackend()
        self.kernel = resolve_kernel(kernel)
        self._backend_stats_prev = self.backend.stats.as_dict()
        self.history = HistoryRecorder()
        self.history.add_extras_source(self._backend_extras)
        self.callbacks = CallbackList()
        self._n_evaluations = 0
        self._stop_requested = False

    # ------------------------------------------------------------- plumbing

    def add_callback(self, callback: ProgressCallback) -> None:
        self.callbacks.append(callback)

    def request_stop(self) -> None:
        """Ask the optimizer to stop after the current generation.

        Intended for termination-criterion callbacks (see
        :class:`repro.core.callbacks.StagnationStop`); the run returns
        normally with everything produced so far.
        """
        self._stop_requested = True

    @property
    def stop_requested(self) -> bool:
        return self._stop_requested

    def _evaluate_population(self, x: np.ndarray) -> Population:
        x = np.atleast_2d(np.asarray(x, dtype=float))
        evaluation = self.backend.evaluate(self.problem, x)
        pop = Population(x, evaluation)
        self._n_evaluations += pop.size
        return pop

    def _backend_extras(self) -> Dict[str, float]:
        """Per-generation backend telemetry merged into history records.

        Reports the *delta* since the previous recorded generation (the
        backend counters themselves are cumulative across the run), so
        each record carries the evaluation cost of its own generation —
        or of the interval since the last record when the recorder's
        cadence skips generations.
        """
        stats = self.backend.stats
        prev = self._backend_stats_prev
        extras = {"eval_time_s": float(stats.eval_time - prev["eval_time"])}
        if stats.cache_hits or stats.cache_misses:
            extras["cache_hits"] = float(stats.cache_hits - prev["cache_hits"])
            extras["cache_misses"] = float(
                stats.cache_misses - prev["cache_misses"]
            )
        self._backend_stats_prev = stats.as_dict()
        return extras

    def _initial_population(
        self, initial_x: Optional[np.ndarray] = None
    ) -> Population:
        if initial_x is not None:
            x = np.atleast_2d(np.asarray(initial_x, dtype=float))
            if x.shape[0] != self.population_size:
                raise ValueError(
                    f"initial population has {x.shape[0]} rows, expected "
                    f"{self.population_size}"
                )
            return self._evaluate_population(self.problem.clip(x))
        x = self.problem.sample(self.population_size, self.rng)
        return self._evaluate_population(x)

    def _package_result(
        self,
        population: Population,
        n_generations: int,
        wall_time: float,
        metadata: Optional[Dict] = None,
    ) -> OptimizationResult:
        front_x, front_f = extract_feasible_front(population)
        meta = {
            "population_size": self.population_size,
            "crossover": repr(self.crossover),
            "mutation": repr(self.mutation),
            "backend": self.backend.describe(),
            "backend_stats": self.backend.stats.as_dict(),
        }
        meta.update(metadata or {})
        return OptimizationResult(
            algorithm=self.algorithm_name,
            problem_name=self.problem.name,
            population=population,
            front_x=front_x,
            front_objectives=front_f,
            n_generations=n_generations,
            n_evaluations=self._n_evaluations,
            wall_time=wall_time,
            history=list(self.history.records),
            metadata=meta,
        )

    # ---------------------------------------------------------------- run

    def run(
        self,
        n_generations: int,
        initial_x: Optional[np.ndarray] = None,
    ) -> OptimizationResult:
        """Execute the optimizer for *n_generations* and package the result."""
        if n_generations < 0:
            raise ValueError(f"n_generations must be >= 0, got {n_generations}")
        self.history.clear()
        self._n_evaluations = 0
        self._stop_requested = False
        # Telemetry deltas are relative to the run start, even when the
        # backend (and its cumulative counters) is reused across runs.
        self._backend_stats_prev = self.backend.stats.as_dict()
        self.problem.reset_evaluation_counter()
        start = time.perf_counter()
        population, meta = self._run_loop(n_generations, initial_x)
        elapsed = time.perf_counter() - start
        return self._package_result(population, n_generations, elapsed, meta)

    def _run_loop(
        self,
        n_generations: int,
        initial_x: Optional[np.ndarray],
    ) -> "tuple[Population, Dict]":
        raise NotImplementedError
