"""Fast non-dominated sorting and crowding distance (Deb et al., 2002).

Both routines honour constrained dominance: every feasible solution
outranks every infeasible one, and infeasible solutions are layered by
total violation.  This is the constraint handling used by NSGA-II and,
per the paper, by all three compared algorithms.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np


def fast_non_dominated_sort(
    objectives: np.ndarray,
    violations: Optional[np.ndarray] = None,
) -> List[np.ndarray]:
    """Partition points into Pareto fronts F1, F2, ...

    Returns a list of index arrays; ``fronts[0]`` is the non-dominated
    set, ``fronts[1]`` the set dominated only by ``fronts[0]``, etc.

    Feasible points are sorted by objective dominance; infeasible points
    are appended afterwards in layers of equal aggregate violation
    (smaller violation = earlier front), which realizes Deb's
    constrained-dominance ordering without an O(n^2) pass over the
    infeasible subset.
    """
    objs = np.atleast_2d(np.asarray(objectives, dtype=float))
    n = objs.shape[0]
    if n == 0:
        return []
    if violations is None:
        violations = np.zeros(n)
    violations = np.asarray(violations, dtype=float).reshape(n)
    feasible = violations <= 0.0

    fronts: List[np.ndarray] = []
    feas_idx = np.flatnonzero(feasible)
    if feas_idx.size:
        for front in _sort_unconstrained(objs[feas_idx]):
            fronts.append(feas_idx[front])

    infeas_idx = np.flatnonzero(~feasible)
    if infeas_idx.size:
        v = violations[infeas_idx]
        order = np.argsort(v, kind="stable")
        sorted_idx = infeas_idx[order]
        sorted_v = v[order]
        # Group ties in violation into a single front.
        start = 0
        for i in range(1, sorted_idx.size + 1):
            if i == sorted_idx.size or sorted_v[i] > sorted_v[start]:
                fronts.append(sorted_idx[start:i])
                start = i
    return fronts


def _sort_unconstrained(objs: np.ndarray) -> List[np.ndarray]:
    """Deb's fast non-dominated sort on feasible points only."""
    n = objs.shape[0]
    domination_count = np.zeros(n, dtype=int)
    dominated_by: List[np.ndarray] = [np.zeros(0, dtype=int)] * n
    for i in range(n):
        le = np.all(objs[i] <= objs, axis=1)
        lt = np.any(objs[i] < objs, axis=1)
        dom = le & lt  # i dominates these
        dom[i] = False
        dominated_by[i] = np.flatnonzero(dom)
        domination_count[dom] += 1

    fronts: List[np.ndarray] = []
    current = np.flatnonzero(domination_count == 0)
    remaining = domination_count.copy()
    while current.size:
        fronts.append(current)
        # Mark processed so they never reappear.
        remaining[current] = -1
        for i in current:
            remaining[dominated_by[i]] -= 1
        current = np.flatnonzero(remaining == 0)
    return fronts


def assign_ranks(
    objectives: np.ndarray,
    violations: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-point front index (0 = non-dominated) from the fast sort."""
    objs = np.atleast_2d(np.asarray(objectives, dtype=float))
    ranks = np.full(objs.shape[0], -1, dtype=int)
    for level, front in enumerate(fast_non_dominated_sort(objs, violations)):
        ranks[front] = level
    return ranks


def crowding_distance(objectives: np.ndarray) -> np.ndarray:
    """Crowding distance of each point within one front.

    Boundary points of every objective get ``inf``.  Objectives with zero
    range contribute nothing.  Empty and singleton inputs are handled
    (singleton gets ``inf``).
    """
    objs = np.atleast_2d(np.asarray(objectives, dtype=float))
    n, m = objs.shape
    if n == 0:
        return np.zeros(0)
    if n <= 2:
        return np.full(n, np.inf)
    distance = np.zeros(n)
    for j in range(m):
        order = np.argsort(objs[:, j], kind="stable")
        col = objs[order, j]
        span = col[-1] - col[0]
        distance[order[0]] = np.inf
        distance[order[-1]] = np.inf
        if span <= 0:
            continue
        gaps = (col[2:] - col[:-2]) / span
        inner = order[1:-1]
        finite = ~np.isinf(distance[inner])
        distance[inner[finite]] += gaps[finite]
    return distance


def crowded_truncate(
    objectives: np.ndarray,
    violations: Optional[np.ndarray],
    k: int,
) -> np.ndarray:
    """Select *k* indices by (rank, crowding) — NSGA-II environmental selection.

    Whole fronts are taken while they fit; the first front that overflows
    is truncated by descending crowding distance.  Returns the selected
    indices (rank-major order).
    """
    objs = np.atleast_2d(np.asarray(objectives, dtype=float))
    n = objs.shape[0]
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if k >= n:
        return np.arange(n)
    chosen: List[np.ndarray] = []
    taken = 0
    for front in fast_non_dominated_sort(objs, violations):
        if taken + front.size <= k:
            chosen.append(front)
            taken += front.size
            if taken == k:
                break
        else:
            dist = crowding_distance(objs[front])
            order = np.argsort(-dist, kind="stable")
            chosen.append(front[order[: k - taken]])
            break
    return np.concatenate(chosen) if chosen else np.zeros(0, dtype=int)
