"""Fast non-dominated sorting and crowding distance (Deb et al., 2002).

Both routines honour constrained dominance: every feasible solution
outranks every infeasible one, and infeasible solutions are layered by
total violation.  This is the constraint handling used by NSGA-II and,
per the paper, by all three compared algorithms.

The heavy lifting lives in :mod:`repro.core.kernels`, which provides two
interchangeable implementations — the historical per-row Python loop
(``kernel="reference"``, the oracle) and a blocked full-matrix broadcast
(``kernel="blocked"``, the default).  Every public function here takes a
``kernel=`` argument; ``None`` uses the process-wide default
(:func:`repro.core.kernels.set_default_kernel` / ``REPRO_KERNEL``).
Both kernels return bit-identical results.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.kernels import (
    _truncate_indices,
    constrained_fronts,
    crowding_distance,
    nds_fronts_reference,
    resolve_kernel,
)

__all__ = [
    "fast_non_dominated_sort",
    "assign_ranks",
    "crowding_distance",
    "crowded_truncate",
]


def fast_non_dominated_sort(
    objectives: np.ndarray,
    violations: Optional[np.ndarray] = None,
    kernel: Optional[str] = None,
) -> List[np.ndarray]:
    """Partition points into Pareto fronts F1, F2, ...

    Returns a list of index arrays; ``fronts[0]`` is the non-dominated
    set, ``fronts[1]`` the set dominated only by ``fronts[0]``, etc.

    Feasible points are sorted by objective dominance; infeasible points
    are appended afterwards in layers of equal aggregate violation
    (smaller violation = earlier front), which realizes Deb's
    constrained-dominance ordering without an O(n^2) pass over the
    infeasible subset.
    """
    return constrained_fronts(objectives, violations, kernel=kernel)


def _sort_unconstrained(objs: np.ndarray) -> List[np.ndarray]:
    """Deb's fast non-dominated sort on feasible points only (oracle)."""
    return nds_fronts_reference(objs)


def assign_ranks(
    objectives: np.ndarray,
    violations: Optional[np.ndarray] = None,
    kernel: Optional[str] = None,
) -> np.ndarray:
    """Per-point front index (0 = non-dominated) from the fast sort."""
    objs = np.atleast_2d(np.asarray(objectives, dtype=float))
    ranks = np.full(objs.shape[0], -1, dtype=int)
    for level, front in enumerate(
        fast_non_dominated_sort(objs, violations, kernel=kernel)
    ):
        ranks[front] = level
    return ranks


def crowded_truncate(
    objectives: np.ndarray,
    violations: Optional[np.ndarray],
    k: int,
    kernel: Optional[str] = None,
) -> np.ndarray:
    """Select *k* indices by (rank, crowding) — NSGA-II environmental selection.

    Whole fronts are taken while they fit; the first front that overflows
    is truncated by descending crowding distance.  Returns the selected
    indices (rank-major order).
    """
    objs = np.atleast_2d(np.asarray(objectives, dtype=float))
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    return _truncate_indices(objs, violations, k, resolve_kernel(kernel))
