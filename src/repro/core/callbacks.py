"""History recording and progress callbacks for optimizer runs."""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.individual import Population
from repro.core.results import GenerationRecord, extract_feasible_front


class HistoryRecorder:
    """Collects :class:`GenerationRecord` snapshots during a run.

    Parameters
    ----------
    every:
        Record every *every*-th generation (generation 0 and the final
        generation are always recorded by the calling optimizer).
    store_fronts:
        When ``False``, ``front_objectives`` is stored as an empty array
        to save memory on very long runs; scalar fields are still kept.
    """

    def __init__(self, every: int = 1, store_fronts: bool = True) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.every = int(every)
        self.store_fronts = bool(store_fronts)
        self.records: List[GenerationRecord] = []
        self._extras_sources: List[Callable[[], Dict[str, float]]] = []

    def add_extras_source(self, source: Callable[[], Dict[str, float]]) -> None:
        """Register a zero-arg callable whose dict is merged into every
        record's extras (caller-passed extras win on key collision).
        The evaluation backend plugs in this way to surface per-generation
        eval wall time and cache counters without touching the algorithms."""
        self._extras_sources.append(source)

    def should_record(self, generation: int) -> bool:
        return generation % self.every == 0

    def record(
        self,
        generation: int,
        population: Population,
        n_evaluations: int,
        extras: Optional[Dict[str, float]] = None,
        force: bool = False,
    ) -> None:
        """Snapshot *population* if the cadence (or *force*) says so."""
        if not force and not self.should_record(generation):
            return
        if self.store_fronts:
            _, front = extract_feasible_front(population)
        else:
            front = np.zeros((0, population.n_obj))
        merged: Dict[str, float] = {}
        for source in self._extras_sources:
            merged.update(source())
        merged.update(extras or {})
        self.records.append(
            GenerationRecord(
                generation=generation,
                n_feasible=int(population.feasible.sum()),
                front_objectives=front,
                n_evaluations=n_evaluations,
                extras=merged,
            )
        )

    def clear(self) -> None:
        self.records = []


ProgressCallback = Callable[[int, Population], None]


class CallbackList:
    """Compose several per-generation callbacks into one callable."""

    def __init__(self, callbacks: Optional[List[ProgressCallback]] = None) -> None:
        self.callbacks: List[ProgressCallback] = list(callbacks or [])

    def append(self, callback: ProgressCallback) -> None:
        self.callbacks.append(callback)

    def __call__(self, generation: int, population: Population) -> None:
        for callback in self.callbacks:
            callback(generation, population)


class RunTimeoutError(RuntimeError):
    """Raised by :class:`WallClockTimeout` when a run exceeds its budget."""


class WallClockTimeout:
    """Cooperative per-run wall-clock limit, checked at generation ends.

    Attach with ``algorithm.add_callback(WallClockTimeout(timeout_s))``;
    once the elapsed time since construction exceeds *timeout_s*, the
    next generation boundary raises :class:`RunTimeoutError`.  Being
    cooperative, it cannot interrupt a single evaluation batch that
    hangs forever — but for the GA workloads here a generation is the
    natural preemption point, and raising (rather than requesting a
    graceful stop) lets the experiment runner treat a too-slow seed
    exactly like a crashed one: record it in the ledger, retry or move
    on (see :func:`repro.experiments.runner.run_many`).
    """

    def __init__(self, timeout_s: float) -> None:
        if timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {timeout_s}")
        self.timeout_s = float(timeout_s)
        self.started = time.perf_counter()

    @property
    def elapsed_s(self) -> float:
        return time.perf_counter() - self.started

    def __call__(self, generation: int, population: Population) -> None:
        elapsed = self.elapsed_s
        if elapsed > self.timeout_s:
            raise RunTimeoutError(
                f"run exceeded wall-clock budget at generation {generation} "
                f"({elapsed:.1f}s > {self.timeout_s:.1f}s)"
            )


class StagnationStop:
    """Termination callback: stop when a front metric stops improving.

    Attach with ``algorithm.add_callback(StagnationStop(algorithm, ...))``.
    Every *check_every* generations the metric of the current feasible
    front is compared against the best seen; after *patience* consecutive
    checks without at least *min_delta* improvement,
    ``algorithm.request_stop()`` is called.

    Parameters
    ----------
    optimizer:
        The optimizer to stop (anything with ``request_stop()``).
    metric_fn:
        ``front_objectives -> float``; larger is better (negate a
        lower-is-better metric).  Defaults to front size.
    patience:
        Consecutive stagnant checks tolerated before stopping.
    min_delta:
        Minimum improvement that resets the patience counter.
    check_every:
        Check cadence in generations.
    warmup:
        Generations before checks begin (feasibility may take a while).
    """

    def __init__(
        self,
        optimizer,
        metric_fn=None,
        patience: int = 5,
        min_delta: float = 0.0,
        check_every: int = 5,
        warmup: int = 10,
    ) -> None:
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        if check_every < 1:
            raise ValueError(f"check_every must be >= 1, got {check_every}")
        self.optimizer = optimizer
        self.metric_fn = metric_fn or (lambda front: float(front.shape[0]))
        self.patience = int(patience)
        self.min_delta = float(min_delta)
        self.check_every = int(check_every)
        self.warmup = int(warmup)
        self.best: Optional[float] = None
        self.stagnant_checks = 0
        self.stopped_at: Optional[int] = None

    def __call__(self, generation: int, population: Population) -> None:
        if self.stopped_at is not None:
            return
        if generation < self.warmup or generation % self.check_every:
            return
        from repro.core.results import extract_feasible_front

        _, front = extract_feasible_front(population)
        if front.shape[0] == 0:
            return
        value = float(self.metric_fn(front))
        if self.best is None or value > self.best + self.min_delta:
            self.best = value
            self.stagnant_checks = 0
            return
        self.stagnant_checks += 1
        if self.stagnant_checks >= self.patience:
            self.stopped_at = generation
            self.optimizer.request_stop()
