"""The paper's algorithmic contribution and its GA substrate.

Public surface:

* :class:`NSGA2` — the "Traditional Purely Global" baseline.
* :class:`SACGA` / :class:`SACGAConfig` — partitioned GA with
  SA-controlled mixing of local and global competition.
* :class:`MESACGA` — multi-phase expanding-partitions SACGA.
* :class:`PartitionGrid`, :func:`expanding_schedule` — objective-space
  partitioning.
* :func:`shape_parameters`, :class:`CompetitionGate`,
  :class:`AnnealingSchedule` — eqns (2)-(4).
"""

from repro.core.individual import Population, IndividualView
from repro.core.evaluation import (
    BackendStats,
    CachedBackend,
    EvaluationBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    make_backend,
)
from repro.core.kernels import (
    KERNEL_NAMES,
    get_default_kernel,
    set_default_kernel,
    local_rank_and_crowd,
    rank_and_crowd,
    truncate_and_rank,
)
from repro.core.operators import SBXCrossover, PolynomialMutation, variation
from repro.core.selection import binary_tournament, linear_rank_selection
from repro.core.nds import (
    fast_non_dominated_sort,
    assign_ranks,
    crowding_distance,
    crowded_truncate,
)
from repro.core.annealing import AnnealingSchedule, CompetitionGate, shape_parameters
from repro.core.partitions import (
    PartitionGrid,
    PartitionedPopulation,
    expanding_schedule,
)
from repro.core.quantile_partitions import QuantilePartitionGrid, AdaptiveSACGA
from repro.core.archive import ParetoArchive
from repro.core.nsga2 import NSGA2
from repro.core.islands import IslandNSGA2
from repro.core.sacga import SACGA, SACGAConfig
from repro.core.mesacga import MESACGA, PAPER_SCHEDULE, paper_schedule
from repro.core.results import OptimizationResult, GenerationRecord
from repro.core.callbacks import (
    HistoryRecorder,
    RunTimeoutError,
    StagnationStop,
    WallClockTimeout,
)
from repro.core.checkpoint import (
    CheckpointCallback,
    load_checkpoint,
    save_checkpoint,
)

__all__ = [
    "Population",
    "IndividualView",
    "BackendStats",
    "CachedBackend",
    "EvaluationBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "make_backend",
    "SBXCrossover",
    "PolynomialMutation",
    "variation",
    "binary_tournament",
    "linear_rank_selection",
    "fast_non_dominated_sort",
    "assign_ranks",
    "crowding_distance",
    "crowded_truncate",
    "KERNEL_NAMES",
    "get_default_kernel",
    "set_default_kernel",
    "local_rank_and_crowd",
    "rank_and_crowd",
    "truncate_and_rank",
    "AnnealingSchedule",
    "CompetitionGate",
    "shape_parameters",
    "PartitionGrid",
    "PartitionedPopulation",
    "expanding_schedule",
    "QuantilePartitionGrid",
    "AdaptiveSACGA",
    "ParetoArchive",
    "NSGA2",
    "IslandNSGA2",
    "SACGA",
    "SACGAConfig",
    "MESACGA",
    "PAPER_SCHEDULE",
    "paper_schedule",
    "OptimizationResult",
    "GenerationRecord",
    "HistoryRecorder",
    "StagnationStop",
    "RunTimeoutError",
    "WallClockTimeout",
    "CheckpointCallback",
    "load_checkpoint",
    "save_checkpoint",
]
