"""T2 (Section 5) — computational overhead of SACGA/MESACGA vs NSGA-II.

Paper: SACGA and MESACGA take "on an average, 18% more computational
time compared to NSGA-II, due to additional overheads of these
algorithms".  This bench times the three algorithms at an identical
budget and checks that the partitioned variants cost more than NSGA-II
but by a bounded factor (not multiples).
"""

from repro.experiments.figures import table_t2


def test_t2_runtime_overhead(benchmark, scale, save_figure):
    data = benchmark.pedantic(lambda: table_t2(scale=scale), rounds=1, iterations=1)
    save_figure(data)

    times = {row[0]: row[1] for row in data.rows}
    overhead = {row[0]: row[2] for row in data.rows}
    assert times["tpg"] > 0

    for algo in ("sacga", "mesacga"):
        # Same evaluation budget, bounded bookkeeping overhead.  The paper
        # reports ~18% with its heavier circuit evaluation; at the reduced
        # population the per-partition Python bookkeeping weighs more (at
        # the full population-200 scale the partitioned algorithms are
        # actually *faster* than NSGA-II, whose merged global sort is
        # O(n^2) — see EXPERIMENTS.md).  Fail only on a blow-up.
        assert overhead[algo] < 150.0, (
            f"{algo} overhead {overhead[algo]:.0f}% vs NSGA-II — "
            "bookkeeping dominates evaluation, not faithful to the paper"
        )
