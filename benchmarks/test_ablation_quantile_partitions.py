"""Ablation — equal-width vs quantile (unequal) partition sizes.

The paper poses this as an open problem (Section 4.4): partition sizes
"are dependent upon the solution space and no method is known of finding
them.  A simplified approach may be to choose partitions of equal
sizes."  This bench compares the paper's equal-width simplification with
the population-quantile heuristic of
:mod:`repro.core.quantile_partitions` on the clustered problem.
"""

import numpy as np

from repro.core.partitions import PartitionGrid
from repro.core.quantile_partitions import AdaptiveSACGA, QuantilePartitionGrid
from repro.core.sacga import SACGA
from repro.metrics.diversity import range_coverage
from repro.metrics.hypervolume import hypervolume_ref
from repro.problems.synthetic import ClusteredFeasibility

REF = (2.0, 1.2)
SEEDS = (2, 3, 4)
BUDGET = 100
POP = 64
M = 6


def run_equal(seed):
    problem = ClusteredFeasibility(n_var=8, tightness=0.015)
    grid = PartitionGrid(axis=1, low=0.0, high=1.0, n_partitions=M)
    return SACGA(problem, grid, population_size=POP, seed=seed).run(BUDGET)


def run_quantile(seed):
    problem = ClusteredFeasibility(n_var=8, tightness=0.015)
    grid = QuantilePartitionGrid(axis=1, edges=np.linspace(0.0, 1.0, M + 1))
    return AdaptiveSACGA(
        problem, grid, population_size=POP, seed=seed, refit_every=15
    ).run(BUDGET)


def scores(runs):
    covs, hvs = [], []
    for r in runs:
        front = r.front_objectives
        covs.append(range_coverage(front, axis=1, low=0, high=1) if front.size else 0)
        hvs.append(hypervolume_ref(front, REF) if front.size else 0)
    return float(np.median(covs)), float(np.median(hvs))


def test_ablation_quantile_partitions(benchmark):
    equal_runs = benchmark.pedantic(
        lambda: [run_equal(s) for s in SEEDS], rounds=1, iterations=1
    )
    quantile_runs = [run_quantile(s) for s in SEEDS]

    cov_eq, hv_eq = scores(equal_runs)
    cov_q, hv_q = scores(quantile_runs)
    print(
        f"\nequal-width partitions : coverage={cov_eq:.2f} hv_ref={hv_eq:.3f}"
        f"\nquantile partitions    : coverage={cov_q:.2f} hv_ref={hv_q:.3f}"
    )
    # Both must work; the adaptive heuristic must be at least competitive
    # with the paper's equal-size simplification.
    assert cov_q > 0 and hv_q > 0
    assert hv_q >= 0.75 * hv_eq
    assert cov_q >= 0.6 * cov_eq
