"""Campaign-engine smoke: kill a worker mid-campaign, yields don't move.

The CI `campaign-smoke` job drives this script end-to-end against real
subprocesses:

1. evolve a tiny front in-process and register it as a surface;
2. compute the **baseline**: the whole campaign (2 corners x 8 MC over
   several operating conditions) evaluated inline, uninterrupted;
3. start `repro serve --workers 0` plus one external `repro workers`
   process, POST the same campaign, and ``kill -9`` the worker while
   shards are still outstanding;
4. start a fresh worker: expired leases requeue, finished shard files
   are never re-evaluated, and the last shard's worker finalizes;
5. assert the durable report's yields/derating are **byte-identical**
   to the uninterrupted inline baseline, and that the derated surface
   is queryable over HTTP.

Exit code 0 means the robustness story held; anything else leaves the
campaign directory (manifest, shards, report) behind for the CI
artifact upload to capture.
"""

from __future__ import annotations

import argparse
import json
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from repro.campaign.engine import CampaignRunner
from repro.campaign.scenarios import CampaignSpec, OperatingCondition
from repro.experiments.runner import Scale, run_one
from repro.experiments.tradeoff import DesignSurface
from repro.serve.client import ServeClient
from repro.serve.surfaces import SurfaceStore

LEASE_S = 5.0
SURFACE = "smoke-front"
CAMPAIGN_ID = "smoke-campaign"

#: 2 corners x 4 operating conditions = 8 scenarios, one shard each.
#: yield_target=0 keeps every design in the derated surface, so the
#: smoke also proves the registration + HTTP query path end to end.
SPEC = CampaignSpec(
    corners=("TT", "SS"),
    n_mc=8,
    shard_scenarios=1,
    yield_target=0.0,
    conditions=(
        OperatingCondition(),
        OperatingCondition(name="hot", temperature=358.0),
        OperatingCondition(name="cold", temperature=233.0),
        OperatingCondition(name="lowvdd", vdd_scale=0.9),
    ),
)

#: Report keys that must not change a byte between execution modes
#: (campaign id/trace/shard plan legitimately differ).
COMPARABLE_KEYS = (
    "designs", "scenario_pass_rate", "n_designs", "n_scenarios", "n_mc",
    "n_evaluations", "yield_target", "n_yielding", "min_yield",
    "median_yield",
)


def log(message: str) -> None:
    print(f"[campaign-smoke] {message}", flush=True)


def comparable(report: dict) -> str:
    return json.dumps(
        {k: report[k] for k in COMPARABLE_KEYS}, sort_keys=True
    )


def start_server(data_dir: Path, port_file: Path, log_path: Path):
    with log_path.open("ab") as fh:
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--port-file", str(port_file),
                "--workers", "0", "--queue-size", "16",
                "--data-dir", str(data_dir), "--lease", str(LEASE_S),
            ],
            stdout=fh, stderr=fh,
        )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if port_file.exists() and port_file.read_text().strip():
            port = int(port_file.read_text().strip())
            return proc, f"http://127.0.0.1:{port}"
        if proc.poll() is not None:
            raise RuntimeError(f"server died at startup (rc={proc.returncode})")
        time.sleep(0.1)
    raise RuntimeError("server never wrote its port file")


def start_worker(data_dir: Path, log_path: Path):
    with log_path.open("ab") as fh:
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro", "workers", "-n", "1",
                "--data-dir", str(data_dir),
                "--lease", str(LEASE_S), "--poll", "0.05",
            ],
            stdout=fh, stderr=fh,
        )


def wait_until(predicate, deadline_s: float, what: str, poll_s: float = 0.05):
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(poll_s)
    raise TimeoutError(f"timed out waiting for {what}")


def evolve_front(store: SurfaceStore) -> DesignSurface:
    """A tiny evolved front, registered as the campaign's input surface."""
    scale = Scale(
        population=24, generations=10, n_mc=2, n_seeds=1, label="smoke"
    )
    summary = run_one("tpg", "campaign-smoke", scale=scale)
    surface = DesignSurface.from_result(summary.result)
    store.register(SURFACE, surface, metadata={"kind": "smoke-front"})
    log(f"evolved front: {surface.size} designs")
    return surface


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--data-dir", default="campaign-smoke-data")
    parser.add_argument("--timeout", type=float, default=420.0)
    args = parser.parse_args(argv)

    data_dir = Path(args.data_dir)
    data_dir.mkdir(parents=True, exist_ok=True)
    server_log = data_dir / "server.log"
    procs = []
    try:
        store = SurfaceStore(data_dir / "surfaces")
        surface = evolve_front(store)

        # Baseline: the same campaign evaluated inline, uninterrupted.
        baseline_runner = CampaignRunner(data_dir / "baseline-campaigns")
        baseline_manifest = baseline_runner.create(
            SPEC, surface.x, surface.c_load, surface.power,
            campaign_id="baseline",
        )
        baseline = baseline_runner.run_inline(baseline_manifest)
        log(
            f"baseline report: {baseline['n_evaluations']} evaluations, "
            f"{baseline['n_yielding']}/{baseline['n_designs']} designs "
            f"meet the {baseline['yield_target']:g} yield target"
        )

        server, url = start_server(data_dir, data_dir / "serve.port", server_log)
        procs.append(server)
        client = ServeClient(url)
        victim = start_worker(data_dir, data_dir / "worker-0.log")
        procs.append(victim)
        log(f"server on {url}, worker pid {victim.pid}")

        status = client.create_campaign(
            {
                "surface": SURFACE,
                "campaign_id": CAMPAIGN_ID,
                "spec": SPEC.to_dict(),
            }
        )
        n_shards = status["n_shards"]
        log(f"campaign {status['id']}: {n_shards} shard jobs submitted, "
            f"trace {status['trace_id']}")
        if len(status["jobs"]) != n_shards:
            log(f"expected {n_shards} jobs, got {status['jobs']}")
            return 1

        # Kill -9 the worker while it holds a claimed shard job and the
        # campaign still has work outstanding — the worst moment.
        def victim_mid_campaign():
            snapshot = client.campaign(CAMPAIGN_ID)
            if not snapshot["shards_pending"]:
                return None
            for job in client.jobs(state="running"):
                if f":{victim.pid}:" in (job.get("worker") or ""):
                    return job
            return None

        doomed = wait_until(
            victim_mid_campaign, 120.0, "worker mid-shard", poll_s=0.02
        )
        victim.send_signal(signal.SIGKILL)
        victim.wait(30.0)
        pending_at_kill = client.campaign(CAMPAIGN_ID)["shards_pending"]
        log(
            f"kill -9'd worker {victim.pid} while it ran {doomed['id']} "
            f"(shard {doomed['params']['shard_index']}); "
            f"{len(pending_at_kill)} shards still pending"
        )
        if not pending_at_kill:
            log("campaign finished before the kill landed — not a valid run")
            return 1

        # A fresh worker picks up the queue; the doomed job's lease
        # expires and requeues; finished shards are never re-run.
        replacement = start_worker(data_dir, data_dir / "worker-1.log")
        procs.append(replacement)
        final = client.wait_campaign(
            CAMPAIGN_ID, timeout=args.timeout, poll_s=0.3
        )
        report = final["report"]
        orphan = client.job(doomed["id"])
        if orphan["state"] != "done":
            log(f"orphaned shard job ended {orphan['state']}: "
                f"{orphan.get('error')}")
            return 1
        log(
            f"campaign complete: orphan {orphan['id']} finished on attempt "
            f"{orphan['attempt']}, worker {orphan['result'].get('worker')}"
        )

        if comparable(report) != comparable(baseline):
            (data_dir / "baseline-report.json").write_text(
                json.dumps(baseline, indent=2), encoding="utf-8"
            )
            log("FAILED: durable report diverged from the inline baseline")
            return 1
        log(
            "yields byte-identical: interrupted durable run == "
            "uninterrupted inline baseline "
            f"({report['n_designs']} designs x {report['n_scenarios']} "
            f"scenarios x {report['n_mc']} MC)"
        )

        derated = report["derated_surface"]
        if not derated.get("registered"):
            log(f"FAILED: derated surface not registered: "
                f"{derated.get('reason')}")
            return 1
        desc = client.surface(derated["name"])
        log(f"derated surface {derated['name']} v{desc['version']} "
            f"served with {desc['size']} designs")

        summary_path = data_dir / "smoke-summary.json"
        summary_path.write_text(
            json.dumps(
                {
                    "killed_job": doomed["id"],
                    "killed_shard": doomed["params"]["shard_index"],
                    "pending_at_kill": pending_at_kill,
                    "orphan_attempt": orphan["attempt"],
                    "report": report,
                },
                indent=2,
            ),
            encoding="utf-8",
        )
        log("campaign smoke PASSED")
        return 0
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            try:
                proc.wait(15.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()


if __name__ == "__main__":
    sys.exit(main())
