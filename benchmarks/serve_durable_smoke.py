"""Durable-job-execution smoke: kill workers and the server, lose nothing.

The CI `durable-jobs-smoke` job drives this script end-to-end against
real subprocesses:

1. start `repro serve --workers 0` (a pure accept/query frontend) plus
   two external `repro workers` processes sharing its SQLite store;
2. submit a batch of small optimization jobs;
3. ``kill -9`` one worker mid-job — its lease expires, the surviving
   worker requeues the job and resumes it from the checkpoint;
4. wait for every job to finish, then ``kill -9`` the server itself;
5. restart the server over the same data dir and verify the job table
   is intact: every job exactly once, all done, surfaces registered.

Exit code 0 means the durability story held; anything else leaves the
data dir (store, ledgers, checkpoints) behind for the CI artifact
upload to capture.
"""

from __future__ import annotations

import argparse
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.serve.client import ServeClient

N_JOBS = 6
LEASE_S = 5.0


def log(message: str) -> None:
    print(f"[durable-smoke] {message}", flush=True)


def start_server(data_dir: Path, port_file: Path, log_path: Path):
    with log_path.open("ab") as fh:
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--port-file", str(port_file),
                "--workers", "0", "--queue-size", str(N_JOBS + 2),
                "--data-dir", str(data_dir), "--lease", str(LEASE_S),
            ],
            stdout=fh, stderr=fh,
        )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if port_file.exists() and port_file.read_text().strip():
            port = int(port_file.read_text().strip())
            return proc, f"http://127.0.0.1:{port}"
        if proc.poll() is not None:
            raise RuntimeError(f"server died at startup (rc={proc.returncode})")
        time.sleep(0.1)
    raise RuntimeError("server never wrote its port file")


def start_worker(data_dir: Path, log_path: Path):
    with log_path.open("ab") as fh:
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro", "workers", "-n", "1",
                "--data-dir", str(data_dir),
                "--lease", str(LEASE_S), "--poll", "0.05",
            ],
            stdout=fh, stderr=fh,
        )


def wait_until(predicate, deadline_s: float, what: str):
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.2)
    raise TimeoutError(f"timed out waiting for {what}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--data-dir", default="durable-smoke-data")
    parser.add_argument("--timeout", type=float, default=420.0)
    args = parser.parse_args(argv)

    data_dir = Path(args.data_dir)
    data_dir.mkdir(parents=True, exist_ok=True)
    server_log = data_dir / "server.log"
    procs = []
    try:
        server, url = start_server(data_dir, data_dir / "serve.port", server_log)
        procs.append(server)
        client = ServeClient(url)
        workers = [
            start_worker(data_dir, data_dir / f"worker-{i}.log")
            for i in range(2)
        ]
        procs.extend(workers)
        log(f"server on {url}, 2 external workers, store "
            f"{data_dir / 'jobs.sqlite'}")

        jobs = [
            client.submit(
                {
                    "algorithm": "tpg",
                    "generations": 30,
                    "population": 16,
                    "n_mc": 2,
                    "checkpoint_every": 3,
                    "experiment_id": f"smoke-{i}",
                    "surface": f"smoke-{i}",
                }
            )
            for i in range(N_JOBS)
        ]
        log(f"submitted {len(jobs)} jobs")

        # Kill worker 0 the moment it is mid-job with a checkpoint on
        # disk — the worst possible moment for an in-memory queue.
        victim = workers[0]

        def victim_mid_job():
            for snapshot in client.jobs(state="running"):
                worker_id = snapshot.get("worker") or ""
                checkpoint = snapshot.get("checkpoint_path")
                if (
                    f":{victim.pid}:" in worker_id
                    and checkpoint
                    and Path(checkpoint).exists()
                ):
                    return snapshot
            return None

        doomed = wait_until(victim_mid_job, 120.0,
                            "worker 0 mid-job with a checkpoint")
        victim.send_signal(signal.SIGKILL)
        victim.wait(30.0)
        log(f"kill -9'd worker {victim.pid} while it ran {doomed['id']}")

        # The survivor requeues the orphan after the lease expires and
        # resumes it from the checkpoint; everything else just drains.
        for job in jobs:
            done = client.wait(job["id"], timeout=args.timeout, poll_s=0.3)
            if done["state"] != "done":
                log(f"job {done['id']} ended {done['state']}: {done.get('error')}")
                return 1
        orphan = client.job(doomed["id"])
        if orphan["attempt"] < 2 or not orphan["result"].get("resumed"):
            log(f"orphaned job was not resumed: attempt={orphan['attempt']} "
                f"result={orphan['result']}")
            return 1
        log(f"all {N_JOBS} jobs done; {orphan['id']} resumed on attempt "
            f"{orphan['attempt']} by {orphan['result'].get('worker')}")

        # Now murder the server and restart it over the same store: the
        # job table must come back byte-for-byte queryable.
        server.send_signal(signal.SIGKILL)
        server.wait(30.0)
        server2, url2 = start_server(
            data_dir, data_dir / "serve2.port", server_log
        )
        procs.append(server2)
        client2 = ServeClient(url2)
        survivors = client2.jobs()
        ids = sorted(j["id"] for j in survivors)
        expected = sorted(j["id"] for j in jobs)
        if ids != expected:
            log(f"job table diverged after restart: {ids} != {expected}")
            return 1
        if any(j["state"] != "done" for j in survivors):
            log(f"non-done jobs after restart: {survivors}")
            return 1
        surfaces = {s["name"] for s in client2.surfaces()}
        missing = {f"smoke-{i}" for i in range(N_JOBS)} - surfaces
        if missing:
            log(f"surfaces missing after restart: {sorted(missing)}")
            return 1
        health = client2.healthz()
        log(f"restarted server lists all {len(survivors)} jobs done, "
            f"{len(surfaces)} surfaces, store={health['job_store']['path']}")
        log("durability smoke PASSED")
        return 0
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            try:
                proc.wait(15.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()


if __name__ == "__main__":
    sys.exit(main())
