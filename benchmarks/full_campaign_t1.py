"""Paper-scale T1 campaign: quality ordering across the spec ladder.

Runs TPG / SACGA / MESACGA on several rungs of the 20-spec difficulty
ladder at a fuller budget and applies the paired sign test from
``repro.experiments.stats``.  Appends to
``benchmarks/results/full/t1.json``.

Usage::

    python benchmarks/full_campaign_t1.py [--gens N] [--pop N] [--rungs 2 7 12 17]
"""

import argparse
import json
from pathlib import Path

from repro.circuits.specs import spec_ladder
from repro.circuits.sizing_problem import IntegratorSizingProblem
from repro.core.mesacga import MESACGA, PAPER_SCHEDULE
from repro.core.nsga2 import NSGA2
from repro.core.sacga import SACGA, SACGAConfig
from repro.experiments.stats import ordering_table
from repro.metrics.diversity import range_coverage
from repro.metrics.hypervolume import hypervolume_ref

REF = (2.0e-3, 5.0e-12)


def run_rung(spec, gens, pop, seed):
    cfg = SACGAConfig(phase1_max_iterations=max(20, gens // 5))
    out = {}
    problem = IntegratorSizingProblem(spec=spec)
    out["tpg"] = NSGA2(problem, population_size=pop, seed=seed).run(gens)
    problem = IntegratorSizingProblem(spec=spec)
    out["sacga"] = SACGA(
        problem, problem.partition_grid(8), population_size=pop,
        seed=seed, config=cfg,
    ).run(gens)
    problem = IntegratorSizingProblem(spec=spec)
    out["mesacga"] = MESACGA(
        problem, axis=1, low=0.0, high=5e-12,
        partition_schedule=PAPER_SCHEDULE if pop >= 150 else (10, 6, 4, 2, 1),
        population_size=pop, seed=seed, config=cfg,
    ).run(gens)
    return {
        name: {
            "hv_ref": hypervolume_ref(r.front_objectives, REF) * 1e15
            if r.front_size else 0.0,
            "coverage": range_coverage(
                r.front_objectives, axis=1, low=0.0, high=5e-12
            ) if r.front_size else 0.0,
            "front_size": r.front_size,
            "wall_time_s": round(r.wall_time, 1),
        }
        for name, r in out.items()
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gens", type=int, default=400)
    parser.add_argument("--pop", type=int, default=120)
    parser.add_argument("--rungs", type=int, nargs="+", default=[4, 8, 12, 16])
    parser.add_argument(
        "--out", default=str(Path(__file__).parent / "results" / "full" / "t1.json")
    )
    args = parser.parse_args()

    ladder = spec_ladder()
    record = {"gens": args.gens, "pop": args.pop, "rungs": {}}
    hv = {"tpg": [], "sacga": [], "mesacga": []}
    cov = {"tpg": [], "sacga": [], "mesacga": []}
    for rung in args.rungs:
        spec = ladder[rung]
        scores = run_rung(spec, args.gens, args.pop, seed=1000 + rung)
        record["rungs"][spec.name] = scores
        for name in hv:
            hv[name].append(scores[name]["hv_ref"])
            cov[name].append(scores[name]["coverage"])
        print(spec.name, {k: round(v["hv_ref"], 3) for k, v in scores.items()})
        out_path = Path(args.out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(json.dumps(record, indent=2))

    print("\nhv_ref ordering (higher better):")
    print(ordering_table(hv))
    print("\ncoverage ordering:")
    print(ordering_table(cov))


if __name__ == "__main__":
    main()
