"""Fig 9 — SACGA quality vs total iteration budget.

Paper: the paper-hypervolume of an 8-partition SACGA falls as the preset
iteration budget grows, with little further improvement beyond ~1000
iterations.  This bench sweeps the budget and checks the decreasing,
saturating trend.
"""

import numpy as np

from repro.experiments.figures import figure9


def test_fig9_span_sweep(benchmark, scale, save_figure):
    data = benchmark.pedantic(lambda: figure9(scale=scale), rounds=1, iterations=1)
    save_figure(data)

    hv = data.series["hv_paper"]
    iters = data.series["iterations"]
    finite = np.isfinite(hv)
    assert finite.sum() >= 3, "not enough budgets produced feasible fronts"

    hv_f = hv[finite]
    it_f = iters[finite]
    # Longer budgets end better (allow noise: compare first vs last thirds).
    k = max(1, hv_f.size // 3)
    early = np.median(hv_f[:k])
    late = np.median(hv_f[-k:])
    assert late <= early, (
        f"hypervolume did not improve with budget: early {early:.2f} "
        f"vs late {late:.2f}"
    )
    # Saturation: the tail improvement is a small fraction of the total.
    if hv_f.size >= 4:
        total_gain = early - hv_f.min()
        tail_gain = hv_f[-2] - hv_f[-1]
        assert tail_gain <= max(0.5 * total_gain, 0.0) + 1e-9 or total_gain <= 0
