"""Fig 4 — annealing-gated participation probability curves (n=5, span=100).

Pure evaluation of eqns (2)-(4) with the shaped constants; the curves
must start near zero, order by sequence position i, and all reach ~1 at
the end of the phase — matching the published plot.
"""

import numpy as np

from repro.experiments.figures import figure4


def test_fig4_probability_curves(benchmark, save_figure):
    data = benchmark.pedantic(
        lambda: figure4(n=5, span=100, n_points=11), rounds=3, iterations=1
    )
    save_figure(data)

    offsets = data.series["offsets"]
    curves = np.array([data.series[f"i={i}"] for i in range(1, 6)])

    # Start near zero, end near one (paper Fig 4).
    assert np.all(curves[:, 0] < 0.05)
    assert np.all(curves[:, -1] > 0.9)
    # Anchors: i=1 hits 0.5 and i=5 hits 0.1 at mid-span; i=5 hits 0.95 at end.
    mid = np.searchsorted(offsets, 50.0)
    assert abs(curves[0, mid] - 0.5) < 1e-9
    assert abs(curves[4, mid] - 0.1) < 1e-9
    assert abs(curves[4, -1] - 0.95) < 1e-9
    # Later sequence positions always have lower probability.
    assert np.all(np.diff(curves, axis=0) <= 1e-12)
    # Each curve is non-decreasing in time.
    assert np.all(np.diff(curves, axis=1) >= -1e-12)
