"""Fig 8 — fronts of TPG, SACGA and MESACGA at the same budget.

Paper: the quality ordering is MESACGA >= SACGA >= TPG for budgets past
~650 iterations; visually, MESACGA and SACGA cover the whole load range
while TPG stays clustered.  Measured here by load-range coverage and the
reference-point hypervolume (higher = better, rewards both convergence
and coverage).
"""

from repro.experiments.figures import REF_POINT, figure8
from repro.metrics.diversity import range_coverage
from repro.metrics.hypervolume import hypervolume_ref


def test_fig8_three_way_fronts(benchmark, scale, save_figure):
    data = benchmark.pedantic(lambda: figure8(scale=scale), rounds=1, iterations=1)
    save_figure(data)

    fronts = {name: data.series[name] for name in ("Only Global", "SACGA", "MESACGA")}
    cov = {
        name: range_coverage(f, axis=1, low=0.0, high=5e-12) if f.size else 0.0
        for name, f in fronts.items()
    }
    hv = {
        name: hypervolume_ref(f, REF_POINT) if f.size else 0.0
        for name, f in fronts.items()
    }

    # Partitioned algorithms must beat the purely-global baseline.
    assert max(cov["SACGA"], cov["MESACGA"]) > cov["Only Global"]
    assert max(hv["SACGA"], hv["MESACGA"]) > hv["Only Global"], (
        f"reference HV ordering failed: {hv}"
    )
