"""Ablation — the SA gate and rank revision (DESIGN.md section 6.3/6.6).

SACGA's phase II demotes globally dominated participants below every
protected local champion ("rank revision", paper section 4.4 feature 2).
Disabling the demotion removes the cost of global participation; the
paper's design predicts slower convergence of the global front at equal
diversity.  This bench runs both variants on the cheap clustered problem
and reports convergence (reference hypervolume) and coverage.
"""

import numpy as np

from repro.core.partitions import PartitionGrid
from repro.core.sacga import SACGA, SACGAConfig
from repro.metrics.diversity import range_coverage
from repro.metrics.hypervolume import hypervolume_ref
from repro.problems.synthetic import ClusteredFeasibility

REF = (2.0, 1.2)
SEEDS = (1, 2, 3)
BUDGET = 100
POP = 64


def run_variant(demote: bool):
    scores = []
    for seed in SEEDS:
        problem = ClusteredFeasibility(n_var=8, tightness=0.015)
        grid = PartitionGrid(axis=1, low=0.0, high=1.0, n_partitions=6)
        config = SACGAConfig(demote_dominated=demote)
        result = SACGA(
            problem, grid, population_size=POP, seed=seed, config=config
        ).run(BUDGET)
        front = result.front_objectives
        scores.append(
            {
                "hv": hypervolume_ref(front, REF) if front.size else 0.0,
                "cov": range_coverage(front, axis=1, low=0, high=1)
                if front.size
                else 0.0,
            }
        )
    return scores


def test_ablation_rank_revision(benchmark):
    with_revision = benchmark.pedantic(
        lambda: run_variant(True), rounds=1, iterations=1
    )
    without_revision = run_variant(False)

    hv_with = float(np.median([s["hv"] for s in with_revision]))
    hv_without = float(np.median([s["hv"] for s in without_revision]))
    cov_with = float(np.median([s["cov"] for s in with_revision]))
    cov_without = float(np.median([s["cov"] for s in without_revision]))
    print(
        f"\nrank revision ON : hv_ref={hv_with:.3f} coverage={cov_with:.2f}"
        f"\nrank revision OFF: hv_without={hv_without:.3f} coverage={cov_without:.2f}"
    )
    # Both variants must work; the revision variant should not be worse
    # by a wide margin (it is the paper's default for a reason).
    assert hv_with > 0
    assert hv_with >= 0.8 * hv_without
