"""Microbenchmark harness for the dominance/selection kernel layer.

Times each kernel primitive (non-dominated sort, per-partition local
ranking, crowded truncation) plus end-to-end NSGA-II generations for
both the ``blocked`` and ``reference`` kernels, at several population
sizes, and writes ``BENCH_kernels.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_kernels.py
    PYTHONPATH=src python benchmarks/perf/bench_kernels.py \
        --sizes 100 400 --repeats 3 --baseline BENCH_kernels.json

Numbers are best-of-``--repeats`` wall times (``time.perf_counter``),
which is robust to scheduler noise for CI-scale inputs.  The JSON holds
both raw seconds and, for each (primitive, size), the ``speedup`` of
blocked over reference — a machine-independent ratio.  With
``--baseline``, the run fails (exit 1) when any overlapping speedup
ratio regresses by more than ``--max-regression`` (default 20%);
comparing ratios rather than seconds makes the check portable across
machines, and comparing only overlapping keys lets CI run at small N
against a baseline recorded at full scale.

Measured ratios still jitter run to run (the end-to-end timings share
the evaluation cost between kernels, so their ratio is the most
sensitive), so the *committed* baseline is recorded as a conservative
floor: ``--floor 0.5`` halves every measured speedup before writing.  A
regression only trips the gate when the current ratio drops below
``floor x (1 - max_regression)`` — i.e. a genuine algorithmic
regression, not scheduler noise.  Regenerate the checked-in baseline
with::

    PYTHONPATH=src python benchmarks/perf/bench_kernels.py \
        --repeats 7 --floor 0.5
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List

import numpy as np

from repro.core.kernels import (
    constrained_fronts,
    local_rank_and_crowd,
    truncate_and_rank,
)
from repro.core.nsga2 import NSGA2
from repro.problems.synthetic import ClusteredFeasibility

KERNELS = ("blocked", "reference")
DEFAULT_SIZES = (100, 400, 1600)
N_PARTITIONS = 16


def make_inputs(n: int, seed: int = 0):
    """A realistic ranking workload: 2 objectives, ~25% infeasible."""
    rng = np.random.default_rng(seed)
    objs = rng.random((n, 2))
    viol = np.where(rng.random(n) < 0.25, rng.random(n), 0.0)
    partition = rng.integers(0, N_PARTITIONS, size=n)
    return objs, viol, partition


def best_of(fn: Callable[[], None], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_primitives(sizes, repeats: int) -> Dict[str, float]:
    times: Dict[str, float] = {}
    for n in sizes:
        objs, viol, partition = make_inputs(n)
        for kernel in KERNELS:
            times[f"nds/n={n}/{kernel}"] = best_of(
                lambda: constrained_fronts(objs, viol, kernel=kernel), repeats
            )
            times[f"local_rank/n={n}/{kernel}"] = best_of(
                lambda: local_rank_and_crowd(
                    objs, viol, partition, N_PARTITIONS, kernel=kernel
                ),
                repeats,
            )
            times[f"crowded_truncate/n={n}/{kernel}"] = best_of(
                lambda: truncate_and_rank(objs, viol, n // 2, kernel=kernel),
                repeats,
            )
    return times


def bench_end_to_end(sizes, repeats: int, generations: int) -> Dict[str, float]:
    times: Dict[str, float] = {}
    for n in sizes:
        problem = ClusteredFeasibility(n_var=8)
        for kernel in KERNELS:

            def run_once():
                NSGA2(
                    problem, population_size=n, seed=7, kernel=kernel
                ).run(generations)

            times[f"nsga2_e2e/n={n}/{kernel}"] = best_of(run_once, repeats)
    return times


def speedups(times: Dict[str, float]) -> Dict[str, float]:
    """blocked-over-reference ratio per (primitive, size); >1 is faster."""
    out: Dict[str, float] = {}
    for key, t_blocked in times.items():
        if not key.endswith("/blocked"):
            continue
        ref_key = key[: -len("blocked")] + "reference"
        t_ref = times.get(ref_key)
        if t_ref and t_blocked > 0:
            out[key[: -len("/blocked")]] = t_ref / t_blocked
    return out


def compare_to_baseline(
    current: Dict[str, float], baseline: Dict[str, float], max_regression: float
) -> List[str]:
    """Speedup-ratio regressions beyond the threshold, over shared keys."""
    failures = []
    for key in sorted(set(current) & set(baseline)):
        if baseline[key] <= 0:
            continue
        ratio = current[key] / baseline[key]
        if ratio < 1.0 - max_regression:
            failures.append(
                f"{key}: speedup {current[key]:.2f}x vs baseline "
                f"{baseline[key]:.2f}x ({(1.0 - ratio) * 100.0:.0f}% regression)"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES),
        help="population sizes to benchmark (default: 100 400 1600)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="take the best of this many timed runs (default: 5)",
    )
    parser.add_argument(
        "--generations", type=int, default=5,
        help="generations per end-to-end NSGA-II timing (default: 5)",
    )
    parser.add_argument(
        "--skip-e2e", action="store_true",
        help="skip the end-to-end optimizer timings (primitives only)",
    )
    parser.add_argument(
        "--output", type=Path,
        default=Path(__file__).resolve().parents[2] / "BENCH_kernels.json",
        help="where to write the results JSON (default: repo root)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="compare speedup ratios against this earlier BENCH_kernels.json",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.20,
        help="fail when a speedup ratio worsens by more than this fraction",
    )
    parser.add_argument(
        "--floor", type=float, default=1.0,
        help="write speedups scaled by this factor — use < 1 to record a "
        "noise-tolerant floor baseline (default: 1.0, raw ratios)",
    )
    args = parser.parse_args(argv)
    if not 0.0 < args.floor <= 1.0:
        parser.error(f"--floor must be in (0, 1], got {args.floor}")

    times = bench_primitives(args.sizes, args.repeats)
    if not args.skip_e2e:
        times.update(
            bench_end_to_end(args.sizes, args.repeats, args.generations)
        )
    ratios = {k: v * args.floor for k, v in speedups(times).items()}

    payload = {
        "sizes": list(args.sizes),
        "repeats": args.repeats,
        "floor_factor": args.floor,
        "times_s": {k: times[k] for k in sorted(times)},
        "speedup_blocked_over_reference": {k: ratios[k] for k in sorted(ratios)},
    }
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    for key in sorted(ratios):
        print(f"{key:<32} {ratios[key]:6.2f}x")
    print(f"wrote {args.output}")

    if args.baseline is not None:
        base = json.loads(args.baseline.read_text())
        base_ratios = base.get("speedup_blocked_over_reference", {})
        failures = compare_to_baseline(ratios, base_ratios, args.max_regression)
        if failures:
            print("PERF REGRESSION:", file=sys.stderr)
            for line in failures:
                print(f"  {line}", file=sys.stderr)
            return 1
        shared = len(set(ratios) & set(base_ratios))
        print(f"baseline check passed ({shared} shared keys)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
