"""Perf-smoke: the kernel microbenchmarks run, agree, and don't regress.

Not part of tier-1 (``testpaths`` excludes ``benchmarks/``); CI runs it
in the dedicated perf-smoke job.  Sizes are kept small so the job
finishes in seconds — the committed ``BENCH_kernels.json`` baseline is
recorded at full scale, and the baseline comparison only looks at
overlapping (primitive, size) keys.
"""

import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
SCRIPT = REPO / "benchmarks" / "perf" / "bench_kernels.py"
OBS_SCRIPT = REPO / "benchmarks" / "perf" / "bench_obs.py"


def run_bench(tmp_path, *extra):
    out = tmp_path / "bench.json"
    cmd = [
        sys.executable, str(SCRIPT),
        "--sizes", "64", "256",
        "--repeats", "3",
        "--generations", "2",
        "--output", str(out),
        *extra,
    ]
    env = {"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin:/usr/local/bin"}
    proc = subprocess.run(
        cmd, capture_output=True, text=True, env=env, cwd=REPO, timeout=600
    )
    return proc, out


def test_bench_writes_json_and_blocked_wins_at_scale(tmp_path):
    proc, out = run_bench(tmp_path)
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(out.read_text())
    times = payload["times_s"]
    ratios = payload["speedup_blocked_over_reference"]
    # Every primitive x size x kernel combination got timed.
    for prim in ("nds", "local_rank", "crowded_truncate", "nsga2_e2e"):
        for n in (64, 256):
            for kernel in ("blocked", "reference"):
                key = f"{prim}/n={n}/{kernel}"
                assert key in times and times[key] > 0.0, key
            assert f"{prim}/n={n}" in ratios
    # At N=256 the vectorized sort already beats the per-row loop; keep
    # the bound loose (1.0x) so CI machine noise can't flake the job.
    assert ratios["nds/n=256"] > 1.0
    assert ratios["crowded_truncate/n=256"] > 1.0


def test_bench_baseline_comparison(tmp_path):
    proc, out = run_bench(tmp_path, "--skip-e2e")
    assert proc.returncode == 0, proc.stderr
    # Self-comparison passes trivially (ratios equal themselves) ...
    proc2, _ = run_bench(tmp_path, "--skip-e2e", "--baseline", str(out))
    assert proc2.returncode == 0, proc2.stderr
    # ... and an impossibly fast baseline trips the regression gate.
    payload = json.loads(out.read_text())
    payload["speedup_blocked_over_reference"] = {
        k: v * 100.0
        for k, v in payload["speedup_blocked_over_reference"].items()
    }
    fake = tmp_path / "fake_baseline.json"
    fake.write_text(json.dumps(payload))
    proc3, _ = run_bench(tmp_path, "--skip-e2e", "--baseline", str(fake))
    assert proc3.returncode == 1
    assert "PERF REGRESSION" in proc3.stderr


def test_committed_baseline_keys_cover_acceptance_target():
    """The checked-in baseline must witness the >=3x truncate speedup."""
    baseline = json.loads((REPO / "BENCH_kernels.json").read_text())
    ratios = baseline["speedup_blocked_over_reference"]
    assert ratios["crowded_truncate/n=1600"] >= 3.0


def run_obs_bench(tmp_path, *extra):
    out = tmp_path / "bench_obs.json"
    cmd = [
        sys.executable, str(OBS_SCRIPT),
        "--sizes", "32",
        "--generations", "4",
        "--repeats", "2",
        "--output", str(out),
        *extra,
    ]
    env = {"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin:/usr/local/bin"}
    proc = subprocess.run(
        cmd, capture_output=True, text=True, env=env, cwd=REPO, timeout=600
    )
    return proc, out


def test_obs_bench_times_every_mode_and_bounds_overhead(tmp_path):
    # A very generous bound — it exists to catch per-individual registry
    # traffic creeping onto the hot loop, not to police jitter.  At this
    # tiny size a generation takes low milliseconds, so the dist mode's
    # fixed per-generation durability cost (ledger append + SQLite
    # metrics flush) looms far larger than it does at real scale.
    proc, out = run_obs_bench(tmp_path, "--max-overhead", "4.0")
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(out.read_text())
    for algorithm in ("nsga2", "sacga"):
        for mode in ("off", "null", "on", "dist"):
            key = f"{algorithm}/n=32/{mode}"
            assert payload["times_s"][key] > 0.0, key
        for mode in ("null", "on", "dist"):
            assert f"{algorithm}/n=32/overhead_{mode}" in payload["overhead_fraction"]
    assert "overhead bound check passed" in proc.stdout


def test_obs_bench_gate_trips_on_tiny_bound(tmp_path):
    # An impossible bound (overhead may not exceed -100%) must fail.
    proc, _ = run_obs_bench(tmp_path, "--max-overhead", "-1.0")
    assert proc.returncode == 1
    assert "OBS OVERHEAD REGRESSION" in proc.stderr


def test_committed_obs_baseline_is_sane():
    payload = json.loads((REPO / "BENCH_obs.json").read_text())
    # Enabled-path overhead stays far below the 2x alarm line — for the
    # in-process instrumentation and for the full distributed stack
    # (span export + ledger + structured log + SQLite metrics flush).
    gated = 0
    for key, value in payload["overhead_fraction"].items():
        if key.endswith(("/overhead_on", "/overhead_dist")):
            gated += 1
            assert value < 2.0, f"{key}: {value:+.1%}"
    assert gated >= 8  # both ratios present for every (algorithm, size)


# ------------------------------------------------------------- eval bench


EVAL_SCRIPT = REPO / "benchmarks" / "perf" / "bench_eval.py"


def run_eval_bench(tmp_path, *extra):
    out = tmp_path / "bench_eval.json"
    cmd = [
        sys.executable, str(EVAL_SCRIPT),
        "--sizes", "50", "200",
        "--repeats", "2",
        "--scalar-cap", "25",
        "--output", str(out),
        *extra,
    ]
    env = {"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin:/usr/local/bin"}
    proc = subprocess.run(
        cmd, capture_output=True, text=True, env=env, cwd=REPO, timeout=600
    )
    return proc, out


def test_eval_bench_writes_json_and_batch_wins(tmp_path):
    proc, out = run_eval_bench(tmp_path)
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(out.read_text())
    times = payload["times_s"]
    ratios = payload["speedup_batch_over_scalar"]
    for name in ("integrator", "clustered"):
        for n in (50, 200):
            for path in ("batch", "scalar"):
                key = f"{name}/n={n}/{path}"
                assert key in times and times[key] > 0.0, key
            assert f"{name}/n={n}" in ratios
    # Even at modest N the batched path must clearly beat the row loop;
    # keep the bound loose so CI machine noise can't flake the job.
    assert ratios["integrator/n=200"] > 2.0
    assert ratios["clustered/n=200"] > 2.0


def test_eval_bench_baseline_comparison(tmp_path):
    proc, out = run_eval_bench(tmp_path, "--problems", "clustered")
    assert proc.returncode == 0, proc.stderr
    # Self-comparison passes trivially ...
    proc2, _ = run_eval_bench(
        tmp_path, "--problems", "clustered", "--baseline", str(out)
    )
    assert proc2.returncode == 0, proc2.stderr
    # ... and an impossibly fast baseline trips the regression gate.
    payload = json.loads(out.read_text())
    payload["speedup_batch_over_scalar"] = {
        k: v * 100.0 for k, v in payload["speedup_batch_over_scalar"].items()
    }
    fake = tmp_path / "fake_eval_baseline.json"
    fake.write_text(json.dumps(payload))
    proc3, _ = run_eval_bench(
        tmp_path, "--problems", "clustered", "--baseline", str(fake)
    )
    assert proc3.returncode == 1
    assert "PERF REGRESSION" in proc3.stderr


def test_committed_eval_baseline_witnesses_acceptance_target():
    """The checked-in BENCH_eval.json must show the >=10x batched speedup
    at N=10^4 on the integrator sizing problem (the PR acceptance bar) —
    and it does so even after the conservative --floor 0.5 scaling."""
    baseline = json.loads((REPO / "BENCH_eval.json").read_text())
    ratios = baseline["speedup_batch_over_scalar"]
    assert ratios["integrator/n=10000"] >= 10.0


# ------------------------------------------------------------- pool bench


POOL_SCRIPT = REPO / "benchmarks" / "perf" / "bench_pool.py"


def run_pool_bench(tmp_path, *extra):
    out = tmp_path / "bench_pool.json"
    cmd = [
        sys.executable, str(POOL_SCRIPT),
        "--sizes", "1000", "4000",
        "--e2e-sizes", "0",
        "--repeats", "2",
        "--output", str(out),
        *extra,
    ]
    env = {"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin:/usr/local/bin"}
    proc = subprocess.run(
        cmd, capture_output=True, text=True, env=env, cwd=REPO, timeout=600
    )
    return proc, out


def test_pool_bench_writes_json_and_shm_wins(tmp_path):
    proc, out = run_pool_bench(tmp_path)
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(out.read_text())
    times = payload["times_s"]
    ratios = payload["speedup_shm_over_process"]
    for n in (1000, 4000):
        for transport in ("serial", "process", "shm"):
            key = f"integrator_transport/n={n}/{transport}"
            assert key in times and times[key] > 0.0, key
        assert f"integrator_transport/n={n}" in ratios
    # Once the batch is big enough to amortize dispatch, the shm arena
    # must beat re-pickling the problem + genomes every generation; keep
    # the bound loose (1.0x) so CI machine noise can't flake the job.
    assert ratios["integrator_transport/n=4000"] > 1.0


def test_pool_bench_baseline_comparison(tmp_path):
    proc, out = run_pool_bench(tmp_path)
    assert proc.returncode == 0, proc.stderr
    # Self-comparison passes trivially (ratios equal themselves) ...
    proc2, _ = run_pool_bench(tmp_path, "--baseline", str(out))
    assert proc2.returncode == 0, proc2.stderr
    # ... and an impossibly fast baseline trips the regression gate.
    payload = json.loads(out.read_text())
    payload["speedup_shm_over_process"] = {
        k: v * 100.0 for k, v in payload["speedup_shm_over_process"].items()
    }
    fake = tmp_path / "fake_pool_baseline.json"
    fake.write_text(json.dumps(payload))
    proc3, _ = run_pool_bench(tmp_path, "--baseline", str(fake))
    assert proc3.returncode == 1
    assert "PERF REGRESSION" in proc3.stderr


def test_committed_pool_baseline_witnesses_acceptance_target():
    """The checked-in BENCH_pool.json must show the >=3x shm transport
    speedup over the pickling process pool at N=10^4 on the
    integrator-shaped probe (the PR acceptance bar) — and it does so even
    after the conservative --floor 0.75 scaling.  End-to-end integrator
    numbers stay in the ungated context dict, never the gated one."""
    baseline = json.loads((REPO / "BENCH_pool.json").read_text())
    ratios = baseline["speedup_shm_over_process"]
    assert ratios["integrator_transport/n=10000"] >= 3.0
    assert all(k.startswith("integrator_transport/") for k in ratios)
    assert "integrator_e2e/n=1000" in baseline["context_speedup_ungated"]
