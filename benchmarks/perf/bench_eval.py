"""Benchmark of batched vs per-individual problem evaluation.

Times ``Problem.evaluate_batch`` on an ``(N, D)`` generation matrix
against the per-individual scalar path (``evaluate_one`` row by row) for
the analytic circuit-sizing problem and a synthetic reference, at
several batch sizes, and writes ``BENCH_eval.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_eval.py
    PYTHONPATH=src python benchmarks/perf/bench_eval.py \
        --sizes 100 1000 --repeats 3 --baseline BENCH_eval.json

Numbers are best-of-``--repeats`` wall times.  The scalar path at the
full acceptance scale (N = 10^4 integrator designs) would take minutes
per repeat, so it is timed on a ``--scalar-cap`` row subsample and
extrapolated linearly — the scalar loop is embarrassingly linear in N,
which makes the extrapolation conservative (it ignores the per-call
overhead growth a real loop would pay).

The JSON holds raw seconds plus, for each (problem, size), the
``speedup`` of the batched path over the scalar loop — a
machine-independent ratio.  With ``--baseline``, the run fails (exit 1)
when any overlapping speedup regresses by more than
``--max-regression`` (default 20%); only overlapping keys are compared,
so CI can run at small N against a baseline recorded at full scale.
As with the kernel bench, the *committed* baseline is recorded with
``--floor 0.5`` so scheduler noise cannot trip the gate.  Regenerate
the checked-in baseline with::

    PYTHONPATH=src python benchmarks/perf/bench_eval.py \
        --repeats 5 --floor 0.5
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List

import numpy as np

from repro.circuits.sizing_problem import IntegratorSizingProblem
from repro.problems.base import Problem
from repro.problems.synthetic import ClusteredFeasibility

DEFAULT_SIZES = (100, 1000, 10000)
SAMPLE_SEED = 99


def make_problems() -> Dict[str, Problem]:
    return {
        "integrator": IntegratorSizingProblem(n_mc=2),
        "clustered": ClusteredFeasibility(n_var=8),
    }


def best_of(fn: Callable[[], None], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_problem(
    name: str,
    problem: Problem,
    sizes,
    repeats: int,
    scalar_cap: int,
) -> Dict[str, float]:
    times: Dict[str, float] = {}
    rng = np.random.default_rng(SAMPLE_SEED)
    for n in sizes:
        x = problem.sample(n, rng)
        times[f"{name}/n={n}/batch"] = best_of(
            lambda: problem.evaluate_batch(x), repeats
        )
        # Scalar loop timed on a subsample and extrapolated linearly.
        n_scalar = min(n, scalar_cap)
        sample = x[:n_scalar]

        def scalar_loop():
            for i in range(sample.shape[0]):
                problem.evaluate_one(sample[i])

        t_sample = best_of(scalar_loop, repeats)
        times[f"{name}/n={n}/scalar"] = t_sample * (n / n_scalar)
        times[f"{name}/n={n}/scalar_sample_rows"] = float(n_scalar)
    return times


def speedups(times: Dict[str, float]) -> Dict[str, float]:
    """scalar-over-batch time ratio per (problem, size); >1 means the
    batched path is faster."""
    out: Dict[str, float] = {}
    for key, t_batch in times.items():
        if not key.endswith("/batch"):
            continue
        stem = key[: -len("/batch")]
        t_scalar = times.get(stem + "/scalar")
        if t_scalar and t_batch > 0:
            out[stem] = t_scalar / t_batch
    return out


def compare_to_baseline(
    current: Dict[str, float], baseline: Dict[str, float], max_regression: float
) -> List[str]:
    """Speedup-ratio regressions beyond the threshold, over shared keys."""
    failures = []
    for key in sorted(set(current) & set(baseline)):
        if baseline[key] <= 0:
            continue
        ratio = current[key] / baseline[key]
        if ratio < 1.0 - max_regression:
            failures.append(
                f"{key}: speedup {current[key]:.2f}x vs baseline "
                f"{baseline[key]:.2f}x ({(1.0 - ratio) * 100.0:.0f}% regression)"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES),
        help="batch sizes to benchmark (default: 100 1000 10000)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="take the best of this many timed runs (default: 3)",
    )
    parser.add_argument(
        "--scalar-cap", type=int, default=200,
        help="time the scalar loop on at most this many rows and "
        "extrapolate linearly (default: 200)",
    )
    parser.add_argument(
        "--problems", nargs="+", default=None,
        choices=sorted(make_problems()),
        help="subset of problems to benchmark (default: all)",
    )
    parser.add_argument(
        "--output", type=Path,
        default=Path(__file__).resolve().parents[2] / "BENCH_eval.json",
        help="where to write the results JSON (default: repo root)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="compare speedup ratios against this earlier BENCH_eval.json",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.20,
        help="fail when a speedup ratio worsens by more than this fraction",
    )
    parser.add_argument(
        "--floor", type=float, default=1.0,
        help="write speedups scaled by this factor — use < 1 to record a "
        "noise-tolerant floor baseline (default: 1.0, raw ratios)",
    )
    args = parser.parse_args(argv)
    if not 0.0 < args.floor <= 1.0:
        parser.error(f"--floor must be in (0, 1], got {args.floor}")
    if args.scalar_cap < 1:
        parser.error(f"--scalar-cap must be >= 1, got {args.scalar_cap}")

    problems = make_problems()
    if args.problems:
        problems = {k: problems[k] for k in args.problems}

    times: Dict[str, float] = {}
    for name, problem in problems.items():
        times.update(
            bench_problem(name, problem, args.sizes, args.repeats, args.scalar_cap)
        )
    ratios = {k: v * args.floor for k, v in speedups(times).items()}

    payload = {
        "sizes": list(args.sizes),
        "repeats": args.repeats,
        "scalar_cap": args.scalar_cap,
        "floor_factor": args.floor,
        "times_s": {k: times[k] for k in sorted(times)},
        "speedup_batch_over_scalar": {k: ratios[k] for k in sorted(ratios)},
    }
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    for key in sorted(ratios):
        print(f"{key:<32} {ratios[key]:8.1f}x")
    print(f"wrote {args.output}")

    if args.baseline is not None:
        base = json.loads(args.baseline.read_text())
        base_ratios = base.get("speedup_batch_over_scalar", {})
        failures = compare_to_baseline(ratios, base_ratios, args.max_regression)
        if failures:
            print("PERF REGRESSION:", file=sys.stderr)
            for line in failures:
                print(f"  {line}", file=sys.stderr)
            return 1
        shared = len(set(ratios) & set(base_ratios))
        print(f"baseline check passed ({shared} shared keys)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
