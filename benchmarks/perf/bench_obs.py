"""Overhead benchmark for the observability subsystem.

Times end-to-end optimizer runs in three instrumentation modes and
writes ``BENCH_obs.json`` at the repo root:

* ``off``  — no metrics, no tracer, no telemetry callback (the default
  production path: every instrument is the shared no-op object).
* ``null`` — a ``NullMetrics``/``NullTracer`` pair plus an attached
  ``TelemetryCallback``; exercises the disabled path end to end.
* ``on``   — a live ``MetricsRegistry``, ``SpanTracer``, and telemetry
  callback, the same wiring ``run_one(metrics=True)`` uses.
* ``dist`` — ``on`` plus the distributed-observability stack a serve
  worker carries: a :class:`TraceRecorder` span exported to disk, a
  bound :class:`RunLedger` fed per generation, structured JSON logging
  to a file, and a per-generation worker-metrics flush into a SQLite
  :class:`JobStore` (a deliberately harsher cadence than the real
  heartbeat-paced flush).

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_obs.py
    PYTHONPATH=src python benchmarks/perf/bench_obs.py \
        --sizes 64 --generations 6 --max-overhead 0.75

For each (algorithm, size) the JSON records best-of-``--repeats`` wall
times plus the ratios ``overhead_null``, ``overhead_on`` and
``overhead_dist``, each the fractional slowdown over ``off`` (0.10 =
10% slower; negative values are timer noise).  With ``--max-overhead``
the run exits 1 when any ``overhead_on`` or ``overhead_dist`` exceeds
the bound.  The default bound is deliberately generous — the point is
to catch an accidental O(population) regression on the hot loop (e.g. a
registry lookup per individual), not to police scheduler jitter on
shared CI machines.
"""

from __future__ import annotations

import argparse
import itertools
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import Callable, Dict, Optional

from repro.core.kernels import kernel_call_counts
from repro.core.nsga2 import NSGA2
from repro.core.partitions import PartitionGrid
from repro.core.sacga import SACGA, SACGAConfig
from repro.obs.registry import MetricsRegistry, NULL_METRICS
from repro.obs.spans import NULL_TRACER, SpanTracer
from repro.obs.telemetry import TelemetryCallback
from repro.problems.synthetic import ClusteredFeasibility

MODES = ("off", "null", "on", "dist")
DEFAULT_SIZES = (64, 256)
SEED = 7


def build(algorithm: str, n: int, metrics=None, tracer=None):
    problem = ClusteredFeasibility(n_var=8)
    if algorithm == "nsga2":
        return NSGA2(
            problem, population_size=n, seed=SEED,
            metrics=metrics, tracer=tracer,
        )
    return SACGA(
        problem,
        PartitionGrid(axis=1, low=0.0, high=1.0, n_partitions=8),
        population_size=n,
        seed=SEED,
        config=SACGAConfig(phase1_max_iterations=2),
        metrics=metrics,
        tracer=tracer,
    )


def run_dist(
    algorithm: str, n: int, generations: int, workdir: Path, store
) -> None:
    """One run under the full serve-worker observability stack.

    *store* is the shared :class:`JobStore` the metrics flushes land in —
    opened once outside the timed region, the way a real worker opens it
    once and then runs many jobs against it.
    """
    from repro.experiments.ledger import LedgerCallback, RunLedger
    from repro.obs.exporters import to_prometheus
    from repro.obs.logging import configure_logging, disable_logging, get_logger
    from repro.obs.tracing import TraceRecorder, mint_trace_id

    trace_id = mint_trace_id()
    registry = MetricsRegistry()
    algo = build(algorithm, n, metrics=registry, tracer=SpanTracer())
    algo.add_callback(
        TelemetryCallback(algo, registry, kernel_counts=kernel_call_counts)
    )
    ledger = RunLedger(
        workdir / "ledger.jsonl",
        bound={"trace_id": trace_id, "job_id": "bench", "worker": "bench-w",
               "attempt": 1},
    )
    algo.add_callback(LedgerCallback(ledger, algo, run_id="bench"))
    algo.add_callback(
        lambda _gen, _pop: store.flush_worker_metrics(
            "bench-w", to_prometheus(registry)
        )
    )
    recorder = TraceRecorder.for_process(workdir / "traces", "bench-worker")
    configure_logging(path=workdir / "log.jsonl", level="info")
    log = get_logger("bench", trace_id=trace_id, job_id="bench")
    try:
        with recorder.span(
            "worker:run", trace_id=trace_id, job_id="bench", attempt=1
        ):
            log.info("bench run started", algorithm=algorithm, n=n)
            algo.run(generations)
            log.info("bench run finished")
    finally:
        disable_logging()


def run_mode(
    algorithm: str, n: int, generations: int, mode: str,
    workdir: Optional[Path] = None, store=None,
) -> None:
    if mode == "dist":
        run_dist(algorithm, n, generations, workdir, store)
        return
    if mode == "off":
        algo = build(algorithm, n)
    elif mode == "null":
        algo = build(algorithm, n, metrics=NULL_METRICS, tracer=NULL_TRACER)
        algo.add_callback(
            TelemetryCallback(
                algo, NULL_METRICS, kernel_counts=kernel_call_counts
            )
        )
    else:
        registry = MetricsRegistry()
        algo = build(algorithm, n, metrics=registry, tracer=SpanTracer())
        algo.add_callback(
            TelemetryCallback(
                algo, registry, kernel_counts=kernel_call_counts
            )
        )
    algo.run(generations)


def best_of(fn: Callable[[], None], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench(sizes, generations: int, repeats: int) -> Dict[str, float]:
    times: Dict[str, float] = {}
    for algorithm in ("nsga2", "sacga"):
        for n in sizes:
            for mode in MODES:
                key = f"{algorithm}/n={n}/{mode}"
                if mode == "dist":
                    # Fresh workdir per timed run so no repeat appends to
                    # a prior run's trace/ledger/log files; the job store
                    # is opened once, like a long-lived worker's.
                    with tempfile.TemporaryDirectory(prefix="benchobs-") as td:
                        from repro.serve.store import JobStore

                        store = JobStore(Path(td) / "jobs.sqlite")
                        runs = itertools.count()
                        try:
                            times[key] = best_of(
                                lambda: run_mode(
                                    algorithm, n, generations, mode,
                                    workdir=Path(td) / f"run{next(runs)}",
                                    store=store,
                                ),
                                repeats,
                            )
                        finally:
                            store.close()
                else:
                    times[key] = best_of(
                        lambda: run_mode(algorithm, n, generations, mode),
                        repeats,
                    )
    return times


def overheads(times: Dict[str, float]) -> Dict[str, float]:
    """Fractional slowdown over the uninstrumented run; 0.1 = 10% slower."""
    out: Dict[str, float] = {}
    for key, t_off in times.items():
        if not key.endswith("/off") or t_off <= 0:
            continue
        base = key[: -len("/off")]
        for mode in ("null", "on", "dist"):
            t_mode = times.get(f"{base}/{mode}")
            if t_mode is not None:
                out[f"{base}/overhead_{mode}"] = t_mode / t_off - 1.0
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES),
        help="population sizes to benchmark (default: 64 256)",
    )
    parser.add_argument(
        "--generations", type=int, default=10,
        help="generations per timed run (default: 10)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="take the best of this many timed runs (default: 5)",
    )
    parser.add_argument(
        "--output", type=Path,
        default=Path(__file__).resolve().parents[2] / "BENCH_obs.json",
        help="where to write the results JSON (default: repo root)",
    )
    parser.add_argument(
        "--max-overhead", type=float, default=None,
        help="fail (exit 1) when any enabled-path overhead exceeds this "
        "fraction, e.g. 0.75 = 75%% slower than uninstrumented",
    )
    args = parser.parse_args(argv)

    times = bench(args.sizes, args.generations, args.repeats)
    ratios = overheads(times)

    payload = {
        "sizes": list(args.sizes),
        "generations": args.generations,
        "repeats": args.repeats,
        "times_s": {k: times[k] for k in sorted(times)},
        "overhead_fraction": {k: ratios[k] for k in sorted(ratios)},
    }
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    for key in sorted(ratios):
        print(f"{key:<40} {ratios[key]:+7.1%}")
    print(f"wrote {args.output}")

    if args.max_overhead is not None:
        failures = [
            f"{key}: {value:+.1%} exceeds bound {args.max_overhead:.0%}"
            for key, value in sorted(ratios.items())
            if key.endswith(("/overhead_on", "/overhead_dist"))
            and value > args.max_overhead
        ]
        if failures:
            print("OBS OVERHEAD REGRESSION:", file=sys.stderr)
            for line in failures:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"overhead bound check passed (<= {args.max_overhead:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
