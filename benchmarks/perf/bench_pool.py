"""Benchmark of evaluation transports: pickling process pool vs shared memory.

Times one warm-pool "generation dispatch" — an ``(N, D)`` genome batch in,
objectives/constraints/violation back — through ``ProcessPoolBackend``
(problem + chunks pickled every call) and ``SharedMemoryBackend`` (problem
shipped once, genomes through reusable shared-memory arenas), and writes
``BENCH_pool.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_pool.py
    PYTHONPATH=src python benchmarks/perf/bench_pool.py \
        --sizes 1000 10000 --repeats 3 --baseline BENCH_pool.json

The gated metric isolates the *transport*: the real integrator problem's
evaluation is compute-bound (seconds per 10^4 designs), so end-to-end
times would mostly measure the simulator and hide the serialization cost
this PR removes.  ``TransportProbeProblem`` therefore shares the
integrator's exact geometry — n_var/n_obj/n_con, bounds, and a pickled
problem blob that *contains* a real ``IntegratorSizingProblem`` — but
evaluates in microseconds, and the reported speedup is the ratio of
transport overheads::

    speedup = (t_process - t_serial) / (t_shm - t_serial)

where ``t_serial`` is the same batch evaluated in-process (the compute
floor both pools also pay).  Real integrator end-to-end times are
recorded alongside (``integrator_e2e/...``) as context only — their
overhead deltas are small against seconds of simulator compute, too
noisy to gate on, so they are kept out of the regression-checked dict.

Pools are warmed before timing (one untimed dispatch spins up workers,
ships the shm problem blob, and sizes the arenas), so the numbers are
steady-state per-generation costs — the regime a 100+-generation run
lives in.

The JSON holds raw seconds plus, per size, the machine-independent
speedup ratio.  With ``--baseline``, the run fails (exit 1) when any
overlapping speedup regresses by more than ``--max-regression`` (default
20%); only overlapping keys are compared, so CI can run at reduced N
against a baseline recorded at full scale.  As with the kernel/eval
benches, the *committed* baseline is recorded with a conservative
``--floor`` so scheduler noise cannot trip the gate.  Regenerate the
checked-in baseline with::

    PYTHONPATH=src python benchmarks/perf/bench_pool.py \
        --repeats 5 --floor 0.75
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List

import numpy as np

from repro.circuits.sizing_problem import IntegratorSizingProblem
from repro.core.evaluation import (
    ProcessPoolBackend,
    SerialBackend,
    SharedMemoryBackend,
)
from repro.problems.base import Problem

DEFAULT_SIZES = (1000, 10000, 100000)
DEFAULT_E2E_SIZES = (1000,)
SAMPLE_SEED = 99


class TransportProbeProblem(Problem):
    """Integrator-shaped problem with microsecond evaluation.

    Same decision-space geometry as :class:`IntegratorSizingProblem`
    (n_var, n_obj, n_con, bounds) and a realistic pickled footprint (the
    ``payload`` attribute embeds a real integrator problem, so the
    process backend's per-task problem blob matches production), but the
    objectives are trivial vectorized expressions — what the transports
    move dominates what the workers compute.
    """

    def __init__(self) -> None:
        base = IntegratorSizingProblem(n_mc=2)
        super().__init__(
            n_var=base.n_var,
            n_obj=base.n_obj,
            n_con=base.n_con,
            lower=base.lower,
            upper=base.upper,
        )
        self.payload = base

    def _evaluate(self, x: np.ndarray):
        objectives = np.stack([x.sum(axis=1), x[:, 0] - x[:, 1]], axis=1)
        constraints = np.tile(x[:, :1], (1, self.n_con)) - 0.5
        return objectives, constraints


def best_of(fn: Callable[[], None], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_transports(
    name: str,
    problem: Problem,
    sizes,
    repeats: int,
    workers: int,
) -> Dict[str, float]:
    """serial/process/shm per-generation seconds for each batch size."""
    times: Dict[str, float] = {}
    rng = np.random.default_rng(SAMPLE_SEED)
    serial = SerialBackend()
    with ProcessPoolBackend(n_workers=workers) as process, \
            SharedMemoryBackend(n_workers=workers) as shm:
        for n in sizes:
            x = problem.sample(n, rng)
            times[f"{name}/n={n}/serial"] = best_of(
                lambda: serial.evaluate(problem, x), repeats
            )
            # Warm dispatch: spin up workers / ship the problem blob /
            # size the arenas outside the timed region.
            process.evaluate(problem, x)
            times[f"{name}/n={n}/process"] = best_of(
                lambda: process.evaluate(problem, x), repeats
            )
            shm.evaluate(problem, x)
            times[f"{name}/n={n}/shm"] = best_of(
                lambda: shm.evaluate(problem, x), repeats
            )
        if process.stats.fallbacks or shm.stats.fallbacks:
            raise RuntimeError(
                "a pool backend fell back to serial mid-benchmark "
                f"(process={process.stats.fallbacks}, shm={shm.stats.fallbacks})"
            )
    return times


def speedups(times: Dict[str, float]) -> Dict[str, float]:
    """Transport-overhead ratio (process over shm) per (section, size).

    Subtracting the serial compute floor isolates what each pool *adds*
    on top of the evaluation itself; >1 means the shared-memory
    transport is cheaper.
    """
    out: Dict[str, float] = {}
    for key, t_shm in times.items():
        if not key.endswith("/shm"):
            continue
        stem = key[: -len("/shm")]
        t_process = times.get(stem + "/process")
        t_serial = times.get(stem + "/serial", 0.0)
        if t_process is None:
            continue
        overhead_shm = max(t_shm - t_serial, 1e-6)
        overhead_process = max(t_process - t_serial, 1e-6)
        out[stem] = overhead_process / overhead_shm
    return out


def compare_to_baseline(
    current: Dict[str, float], baseline: Dict[str, float], max_regression: float
) -> List[str]:
    """Speedup-ratio regressions beyond the threshold, over shared keys."""
    failures = []
    for key in sorted(set(current) & set(baseline)):
        if baseline[key] <= 0:
            continue
        ratio = current[key] / baseline[key]
        if ratio < 1.0 - max_regression:
            failures.append(
                f"{key}: speedup {current[key]:.2f}x vs baseline "
                f"{baseline[key]:.2f}x ({(1.0 - ratio) * 100.0:.0f}% regression)"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES),
        help="probe batch sizes to benchmark (default: 1000 10000 100000)",
    )
    parser.add_argument(
        "--e2e-sizes", type=int, nargs="+", default=list(DEFAULT_E2E_SIZES),
        help="real-integrator end-to-end batch sizes (context only; "
        "default: 1000; pass 0 to skip)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="take the best of this many timed dispatches (default: 3)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="pool workers for both transports (default: 2)",
    )
    parser.add_argument(
        "--output", type=Path,
        default=Path(__file__).resolve().parents[2] / "BENCH_pool.json",
        help="where to write the results JSON (default: repo root)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="compare speedup ratios against this earlier BENCH_pool.json",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.20,
        help="fail when a speedup ratio worsens by more than this fraction",
    )
    parser.add_argument(
        "--floor", type=float, default=1.0,
        help="write speedups scaled by this factor — use < 1 to record a "
        "noise-tolerant floor baseline (default: 1.0, raw ratios)",
    )
    args = parser.parse_args(argv)
    if not 0.0 < args.floor <= 1.0:
        parser.error(f"--floor must be in (0, 1], got {args.floor}")
    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")

    times: Dict[str, float] = {}
    times.update(
        bench_transports(
            "integrator_transport",
            TransportProbeProblem(),
            args.sizes,
            args.repeats,
            args.workers,
        )
    )
    e2e_sizes = [n for n in args.e2e_sizes if n > 0]
    if e2e_sizes:
        times.update(
            bench_transports(
                "integrator_e2e",
                IntegratorSizingProblem(n_mc=2),
                e2e_sizes,
                args.repeats,
                args.workers,
            )
        )
    all_ratios = speedups(times)
    ratios = {
        k: v * args.floor
        for k, v in all_ratios.items()
        if k.startswith("integrator_transport/")
    }
    context = {
        k: v for k, v in all_ratios.items()
        if not k.startswith("integrator_transport/")
    }

    payload = {
        "sizes": list(args.sizes),
        "e2e_sizes": e2e_sizes,
        "repeats": args.repeats,
        "workers": args.workers,
        "floor_factor": args.floor,
        "times_s": {k: times[k] for k in sorted(times)},
        "speedup_shm_over_process": {k: ratios[k] for k in sorted(ratios)},
        "context_speedup_ungated": {k: context[k] for k in sorted(context)},
    }
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    for key in sorted(ratios):
        print(f"{key:<36} {ratios[key]:8.2f}x")
    print(f"wrote {args.output}")

    if args.baseline is not None:
        base = json.loads(args.baseline.read_text())
        base_ratios = base.get("speedup_shm_over_process", {})
        failures = compare_to_baseline(ratios, base_ratios, args.max_regression)
        if failures:
            print("PERF REGRESSION against baseline:", file=sys.stderr)
            for line in failures:
                print(f"  {line}", file=sys.stderr)
            return 1
        overlap = sorted(set(ratios) & set(base_ratios))
        print(
            f"baseline check passed ({len(overlap)} overlapping keys, "
            f"max regression {args.max_regression:.0%})"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
