"""Fig 2 — NSGA-II (TPG) Pareto front clusters along the load-cap axis.

Paper: after 800 iterations of NSGA-II the Pareto-optimal solutions were
"found to cluster mostly between 4 and 5 pF" instead of covering the
whole 0-5 pF range.  This bench reruns NSGA-II on the sizing problem and
reports the front plus its coverage/cluster statistics.
"""

from repro.experiments.figures import figure2


def test_fig2_nsga2_clustering(benchmark, scale, save_figure):
    data = benchmark.pedantic(
        lambda: figure2(scale=scale), rounds=1, iterations=1
    )
    save_figure(data)
    front = data.series["front"]
    assert front.shape[0] >= 1, "NSGA-II found no feasible front at all"
    # The clustering claim: coverage of the 0-5 pF range stays low.
    coverage = float(data.notes.split("coverage of 0-5 pF: ")[1].split(";")[0])
    assert coverage <= 0.6, (
        "NSGA-II unexpectedly covered the full load range - the clustering "
        "pathology of Fig 2 did not reproduce"
    )
