"""Shared fixtures for the figure-reproduction benchmarks.

Each benchmark reproduces one figure/table of the paper at a reduced
default scale (seconds per figure) and prints the same rows/series the
paper plots.  Set ``REPRO_FULL=1`` for paper-scale budgets (population
200, 800-1250 generations — minutes to hours per figure).

Rendered outputs are also written to ``benchmarks/results/<figure>.txt``
so EXPERIMENTS.md can reference the measured series.
"""

import os
from pathlib import Path

import pytest

from repro.experiments.runner import Scale

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale() -> Scale:
    """The experiment scale for all benchmarks (env-controlled)."""
    return Scale.from_env()


@pytest.fixture(scope="session")
def save_figure():
    """Callable that persists a rendered FigureData and echoes it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(data):
        text = data.render()
        path = RESULTS_DIR / f"{data.figure_id.lower()}.txt"
        path.write_text(text + "\n")
        print()
        print(text)
        return data

    return _save
