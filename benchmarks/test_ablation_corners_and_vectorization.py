"""Ablations on the evaluation engine (DESIGN.md sections 6.1-6.2).

* **Corner checking** — worst-case evaluation over the five process
  corners vs TT-only: corners must tighten the feasible region (the
  paper constrains matching "across all manufacturing process corners").
* **Vectorized vs per-design evaluation** — the array-oriented engine
  must agree with row-at-a-time evaluation to float precision, and be
  substantially faster (this is what makes GA-scale circuit evaluation
  tractable in pure Python).
"""

import time

import numpy as np

from repro.circuits.sizing_problem import IntegratorSizingProblem
from repro.utils.rng import as_rng


def test_ablation_corner_checking(benchmark):
    x = IntegratorSizingProblem(n_mc=4).sample(400, as_rng(0))

    def run():
        with_corners = IntegratorSizingProblem(n_mc=4, use_corners=True)
        without = IntegratorSizingProblem(n_mc=4, use_corners=False)
        return with_corners.evaluate(x), without.evaluate(x)

    ev_corners, ev_tt = benchmark.pedantic(run, rounds=1, iterations=1)
    # Worst-corner checking can only shrink the feasible set.
    assert np.all(ev_corners.violation >= ev_tt.violation - 1e-9)
    tightened = (ev_corners.violation > ev_tt.violation + 1e-12).mean()
    print(f"\ncorner checking tightened {tightened:.1%} of random candidates")
    assert tightened > 0.05


def test_ablation_vectorized_vs_scalar(benchmark):
    problem = IntegratorSizingProblem(n_mc=4)
    x = problem.sample(128, as_rng(1))

    batched = benchmark.pedantic(
        lambda: problem.evaluate(x), rounds=1, iterations=1
    )

    start = time.perf_counter()
    rows = [problem.evaluate(x[i : i + 1]) for i in range(x.shape[0])]
    scalar_time = time.perf_counter() - start

    scalar_obj = np.vstack([r.objectives for r in rows])
    scalar_con = np.vstack([r.constraints for r in rows])
    np.testing.assert_allclose(batched.objectives, scalar_obj, rtol=1e-12)
    np.testing.assert_allclose(batched.constraints, scalar_con, rtol=1e-9, atol=1e-12)

    start = time.perf_counter()
    problem.evaluate(x)
    batched_time = time.perf_counter() - start
    speedup = scalar_time / max(batched_time, 1e-9)
    print(f"\nvectorization speedup on 128 designs: {speedup:.0f}x")
    assert speedup > 5
