"""Fig 6 — determining the optimal number of static partitions.

Paper: the paper-hypervolume of a 1200-iteration SACGA varies with the
partition count m and shows an interior optimum (16 for its instance);
both very few and very many partitions do worse.  This bench sweeps m
and reports the HV series.
"""

import numpy as np

from repro.experiments.figures import figure6


def test_fig6_partition_sweep(benchmark, scale, save_figure):
    counts = [6, 10, 14, 16, 20, 24]
    data = benchmark.pedantic(
        lambda: figure6(scale=scale, partition_counts=counts),
        rounds=1,
        iterations=1,
    )
    save_figure(data)

    hv = data.series["hv_paper"]
    finite = hv[np.isfinite(hv)]
    assert finite.size >= len(counts) - 1, "too many runs produced no front"
    # The qualitative claim: the partition count matters — the sweep must
    # show real spread between the best and worst m (paper: ~21 vs ~29).
    assert finite.max() > 1.1 * finite.min(), (
        "hypervolume insensitive to partition count; Fig 6's premise "
        "did not reproduce"
    )
