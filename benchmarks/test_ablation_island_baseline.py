"""Baseline comparison — SACGA vs the island-model GA the paper cites.

Paper §4.1 positions SACGA against "parallel population GA with
inter-population migration controlled in a tribe or island based
framework [7]".  This bench runs both at an equal evaluation budget on
the clustered-feasibility problem and checks that SACGA's
objective-space partitioning is at least competitive with unstructured
islands (the paper's thesis: a simple single-population modification
suffices).
"""

import numpy as np

from repro.core.islands import IslandNSGA2
from repro.core.partitions import PartitionGrid
from repro.core.sacga import SACGA
from repro.metrics.diversity import range_coverage
from repro.metrics.hypervolume import hypervolume_ref
from repro.problems.synthetic import ClusteredFeasibility

REF = (2.0, 1.2)
SEEDS = (4, 5, 6)
BUDGET = 100
POP = 64


def run_sacga(seed):
    problem = ClusteredFeasibility(n_var=8, tightness=0.015)
    grid = PartitionGrid(axis=1, low=0.0, high=1.0, n_partitions=6)
    return SACGA(problem, grid, population_size=POP, seed=seed).run(BUDGET)


def run_islands(seed):
    problem = ClusteredFeasibility(n_var=8, tightness=0.015)
    return IslandNSGA2(
        problem,
        population_size=POP,
        n_islands=6,
        migration_interval=10,
        n_migrants=2,
        seed=seed,
    ).run(BUDGET)


def scores(runs):
    cov, hv = [], []
    for r in runs:
        front = r.front_objectives
        cov.append(range_coverage(front, axis=1, low=0, high=1) if front.size else 0)
        hv.append(hypervolume_ref(front, REF) if front.size else 0)
    return float(np.median(cov)), float(np.median(hv))


def test_ablation_island_baseline(benchmark):
    sacga_runs = benchmark.pedantic(
        lambda: [run_sacga(s) for s in SEEDS], rounds=1, iterations=1
    )
    island_runs = [run_islands(s) for s in SEEDS]

    cov_s, hv_s = scores(sacga_runs)
    cov_i, hv_i = scores(island_runs)
    print(
        f"\nSACGA (objective partitions): coverage={cov_s:.2f} hv_ref={hv_s:.3f}"
        f"\nIsland GA (6 islands)      : coverage={cov_i:.2f} hv_ref={hv_i:.3f}"
    )
    # Equal budgets by construction.
    assert {r.n_evaluations for r in sacga_runs} == {
        r.n_evaluations for r in island_runs
    }
    # The paper's thesis: the single-population partitioned modification
    # achieves what islands do; SACGA must be at least competitive.
    assert hv_s >= 0.85 * hv_i
    assert cov_s >= 0.7 * cov_i
