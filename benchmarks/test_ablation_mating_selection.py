"""Ablation — rank-based Global Mating Pool vs crowded binary tournament.

The paper prescribes "rank-based selection of individuals from the entire
population" for building SACGA's Global Mating Pool (section 4.3); NSGA-II
uses a crowded binary tournament instead.  This bench swaps the two and
compares front quality on the clustered problem (DESIGN.md section 6.3).
"""

import numpy as np

from repro.core.partitions import PartitionGrid
from repro.core.sacga import SACGA, SACGAConfig
from repro.metrics.diversity import range_coverage
from repro.metrics.hypervolume import hypervolume_ref
from repro.problems.synthetic import ClusteredFeasibility

REF = (2.0, 1.2)
SEEDS = (5, 6, 7)


def run_variant(mating: str):
    out = []
    for seed in SEEDS:
        problem = ClusteredFeasibility(n_var=8, tightness=0.015)
        grid = PartitionGrid(axis=1, low=0.0, high=1.0, n_partitions=6)
        config = SACGAConfig(mating_selection=mating)
        result = SACGA(
            problem, grid, population_size=64, seed=seed, config=config
        ).run(100)
        front = result.front_objectives
        out.append(
            {
                "hv": hypervolume_ref(front, REF) if front.size else 0.0,
                "cov": range_coverage(front, axis=1, low=0, high=1)
                if front.size
                else 0.0,
            }
        )
    return out


def test_ablation_mating_selection(benchmark):
    rank_based = benchmark.pedantic(
        lambda: run_variant("linear_rank"), rounds=1, iterations=1
    )
    tournament = run_variant("tournament")

    hv_rank = float(np.median([s["hv"] for s in rank_based]))
    hv_tour = float(np.median([s["hv"] for s in tournament]))
    print(
        f"\nlinear-rank pool: hv_ref={hv_rank:.3f}"
        f"\ntournament pool : hv_ref={hv_tour:.3f}"
    )
    # Both selection schemes must produce usable fronts; the paper's
    # rank-based pool should be competitive.
    assert hv_rank > 0 and hv_tour > 0
    assert hv_rank >= 0.7 * hv_tour
