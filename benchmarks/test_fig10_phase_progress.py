"""Fig 10 — Pareto-front progress across the 7 MESACGA phases.

Paper: the paper-hypervolume measured at the end of each phase falls
phase over phase, and larger per-phase spans end lower (span=150 beats
span=50 after the final phase).
"""

import numpy as np

from repro.experiments.figures import figure10


def test_fig10_phase_progress(benchmark, scale, save_figure):
    data = benchmark.pedantic(lambda: figure10(scale=scale), rounds=1, iterations=1)
    save_figure(data)

    series = {k: v for k, v in data.series.items() if k.startswith("span=")}
    assert len(series) >= 2, "need at least two span settings"

    improved = 0
    for name, hv in series.items():
        hv = np.asarray(hv)
        if hv.size >= 2 and np.isfinite(hv[0]) and np.isfinite(hv[-1]):
            if hv[-1] <= hv[0]:
                improved += 1
    # The front must advance (HV fall) across phases for most spans.
    assert improved >= max(1, len(series) - 1), (
        f"phase-over-phase improvement failed for most spans: {series}"
    )
