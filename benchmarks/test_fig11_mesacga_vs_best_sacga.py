"""Fig 11 — MESACGA vs the best static-partition SACGA at the long budget.

Paper: a 1250-iteration MESACGA (200 pure-local + 7 x 150) produces a
front comparable to the best 16-partition SACGA found by exhaustive
sweeping (paper HV 21.83 vs 22.19 — within ~2%), i.e. MESACGA removes
the need to know the optimal partition count in advance.
"""

import numpy as np

from repro.experiments.figures import figure11
from repro.metrics.diversity import range_coverage


def test_fig11_mesacga_vs_best_sacga(benchmark, scale, save_figure):
    data = benchmark.pedantic(lambda: figure11(scale=scale), rounds=1, iterations=1)
    save_figure(data)

    sacga = data.series["sacga16"]
    mesacga = data.series["mesacga"]
    assert mesacga.shape[0] >= 1 and sacga.shape[0] >= 1

    cov_s = range_coverage(sacga, axis=1, low=0.0, high=5e-12)
    cov_m = range_coverage(mesacga, axis=1, low=0.0, high=5e-12)
    # "Comparable": MESACGA reaches at least ~2/3 of the tuned SACGA's
    # coverage without any partition-count tuning (reduced-scale runs are
    # noisy; the paper reports near-equality at full scale).
    assert cov_m >= 0.6 * cov_s, (
        f"MESACGA coverage {cov_m:.2f} far below tuned SACGA {cov_s:.2f}"
    )
