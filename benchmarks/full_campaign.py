"""Paper-scale experiment campaign (run manually; takes ~1 hour).

Runs the figure experiments at paper-proportioned budgets and writes the
measured series to ``benchmarks/results/full/``.  EXPERIMENTS.md quotes
these numbers.

Usage::

    python benchmarks/full_campaign.py [--out DIR]
"""

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.core.mesacga import MESACGA, PAPER_SCHEDULE
from repro.core.nsga2 import NSGA2
from repro.core.sacga import SACGA, SACGAConfig
from repro.circuits.sizing_problem import IntegratorSizingProblem
from repro.experiments.runner import PAPER_HV_SCALE
from repro.metrics.diversity import range_coverage
from repro.metrics.hypervolume import hypervolume_paper, hypervolume_ref

POP = 200
CFG = SACGAConfig(phase1_max_iterations=200)
REF = (2.0e-3, 5.0e-12)


def describe(result):
    front = result.front_objectives
    if front.shape[0] == 0:
        return {"front_size": 0}
    c_load = (5e-12 - front[:, 1]) * 1e12
    return {
        "front_size": int(front.shape[0]),
        "coverage": range_coverage(front, axis=1, low=0.0, high=5e-12),
        "hv_paper": hypervolume_paper(front, scale=PAPER_HV_SCALE),
        "hv_ref": hypervolume_ref(front, REF) * 1e15,
        "c_load_pF": [round(float(v), 3) for v in np.sort(c_load)],
        "power_mW": [
            round(float(v) * 1e3, 4) for v in front[np.argsort(c_load), 0]
        ],
        "wall_time_s": round(result.wall_time, 1),
    }


def fresh():
    return IntegratorSizingProblem()


def run_campaign(out_dir: Path) -> None:
    out_dir.mkdir(parents=True, exist_ok=True)
    record = {}

    def save(key, payload):
        record[key] = payload
        (out_dir / "campaign.json").write_text(json.dumps(record, indent=2))
        print(f"[{time.strftime('%H:%M:%S')}] {key}: "
              f"{ {k: v for k, v in payload.items() if k not in ('c_load_pF', 'power_mW')} }")

    # Figs 2/5/8: the 800-generation trio.
    r = NSGA2(fresh(), population_size=POP, seed=42).run(800)
    save("tpg_800", describe(r))
    p = fresh()
    r = SACGA(p, p.partition_grid(8), population_size=POP, seed=42, config=CFG).run(800)
    save("sacga8_800", describe(r))
    r = MESACGA(
        fresh(), axis=1, low=0.0, high=5e-12,
        partition_schedule=PAPER_SCHEDULE,
        population_size=POP, seed=42, config=CFG,
    ).run(800)
    save("mesacga_800", describe(r))

    # Fig 11: long budget, tuned-static vs expanding.
    p = fresh()
    r = SACGA(p, p.partition_grid(16), population_size=POP, seed=7, config=CFG).run(1200)
    save("sacga16_1200", describe(r))
    r = MESACGA(
        fresh(), axis=1, low=0.0, high=5e-12,
        partition_schedule=PAPER_SCHEDULE, span_per_phase=150,
        population_size=POP, seed=7, config=CFG,
    ).run(200 + 150 * 7)
    save("mesacga_1250", describe(r))

    # Fig 9: budget sweep (8-partition SACGA).
    for gens in (200, 400, 800, 1200):
        p = fresh()
        r = SACGA(p, p.partition_grid(8), population_size=POP, seed=11, config=CFG).run(gens)
        save(f"fig9_gens{gens}", describe(r))

    # Fig 6: partition-count sweep at 1200 generations.
    for m in (6, 12, 16, 20, 24):
        p = fresh()
        r = SACGA(p, p.partition_grid(m), population_size=POP, seed=13, config=CFG).run(1200)
        save(f"fig6_m{m}", describe(r))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default=str(Path(__file__).parent / "results" / "full")
    )
    args = parser.parse_args()
    run_campaign(Path(args.out))


if __name__ == "__main__":
    main()
