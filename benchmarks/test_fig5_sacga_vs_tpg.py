"""Fig 5 — SACGA (8 partitions) vs traditional purely-global fronts.

Paper: at the same 800-iteration budget, the 8-partition SACGA front
covers far more of the 0-5 pF load range than NSGA-II's clustered front.
"""

from repro.experiments.figures import figure5
from repro.metrics.diversity import range_coverage


def test_fig5_sacga_vs_tpg(benchmark, scale, save_figure):
    data = benchmark.pedantic(
        lambda: figure5(scale=scale, n_partitions=8), rounds=1, iterations=1
    )
    save_figure(data)

    tpg = data.series["tpg_front"]
    sacga = data.series["sacga_front"]
    assert sacga.shape[0] >= 1

    cov_tpg = range_coverage(tpg, axis=1, low=0.0, high=5e-12) if tpg.size else 0.0
    cov_sacga = range_coverage(sacga, axis=1, low=0.0, high=5e-12)
    # The headline claim of the figure: SACGA spreads, TPG clusters.
    assert cov_sacga > cov_tpg, (
        f"SACGA coverage {cov_sacga:.2f} did not exceed TPG {cov_tpg:.2f}"
    )
    # SACGA should also produce a materially larger front.
    assert sacga.shape[0] >= tpg.shape[0]
