"""T1 (Section 5, trend 1) — quality ordering across the 20-spec ladder.

Paper: "In all cases, where the evolution was continued for more than 650
iterations, the quality of the solutions ... were found to be in the
order MESACGA >= SACGA >= TPG."  This bench runs a sample of ladder rungs
and checks the ordering by reference-point hypervolume (higher better).
"""

from repro.experiments.figures import table_t1


def test_t1_spec_ladder_ordering(benchmark, scale, save_figure):
    rungs = [4, 12]  # a loose rung and the published rung
    data = benchmark.pedantic(
        lambda: table_t1(scale=scale, rungs=rungs), rounds=1, iterations=1
    )
    save_figure(data)

    # Parse per-rung scores back out of the rows.
    by_spec = {}
    for spec, algo, hv_ref, _cov, _hvp in data.rows:
        by_spec.setdefault(spec, {})[algo] = hv_ref

    wins = 0
    for spec, scores in by_spec.items():
        partitioned_best = max(scores.get("sacga", 0.0), scores.get("mesacga", 0.0))
        if partitioned_best >= scores.get("tpg", 0.0):
            wins += 1
    assert wins == len(by_spec), (
        f"partitioned algorithms lost to TPG on some specs: {by_spec}"
    )
