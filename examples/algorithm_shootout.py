"""Three-way algorithm comparison on the clustered-feasibility problem.

A fast, circuit-free demonstration of the paper's algorithmic claim:
on a problem whose feasible region concentrates at one end of the
trade-off axis, pure global competition (NSGA-II) loses diversity, while
SACGA and MESACGA preserve it — at a bounded extra cost.

Usage::

    python examples/algorithm_shootout.py [--seeds N]
"""

import argparse

import numpy as np

from repro import MESACGA, NSGA2, SACGA, PartitionGrid
from repro.experiments.reporting import format_table
from repro.metrics import hypervolume_ref, range_coverage, spread
from repro.problems import ClusteredFeasibility, weighted_sum_front

BUDGET = 120
POPULATION = 64
REF = (2.0, 1.2)


def weighted_sum_result(seed: int):
    """The classical scalarized baseline at an equal total budget."""
    problem = ClusteredFeasibility(n_var=8, tightness=0.015)
    n_weights = 6
    _, front = weighted_sum_front(
        problem,
        lambda p, s: NSGA2(p, population_size=POPULATION, seed=s),
        n_weights=n_weights,
        generations=BUDGET // n_weights,
        objective_ranges=np.array([[0.3, 1.5], [0.0, 1.0]]),
        base_seed=seed,
    )
    return front


def run_all(seed: int):
    runs = {}
    problem = ClusteredFeasibility(n_var=8, tightness=0.015)
    runs["NSGA-II"] = NSGA2(problem, population_size=POPULATION, seed=seed).run(BUDGET)

    problem = ClusteredFeasibility(n_var=8, tightness=0.015)
    grid = PartitionGrid(axis=1, low=0.0, high=1.0, n_partitions=6)
    runs["SACGA"] = SACGA(
        problem, grid, population_size=POPULATION, seed=seed
    ).run(BUDGET)

    problem = ClusteredFeasibility(n_var=8, tightness=0.015)
    runs["MESACGA"] = MESACGA(
        problem,
        axis=1,
        low=0.0,
        high=1.0,
        partition_schedule=[8, 5, 3, 2, 1],
        population_size=POPULATION,
        seed=seed,
    ).run(BUDGET)
    return runs


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=3)
    args = parser.parse_args()

    scores = {name: {"cov": [], "hv": [], "spr": [], "time": []} for name in
              ("weighted-sum", "NSGA-II", "SACGA", "MESACGA")}
    for seed in range(args.seeds):
        import time as _time

        t0 = _time.perf_counter()
        ws_front = weighted_sum_result(seed)
        ws_entry = scores["weighted-sum"]
        ws_entry["time"].append(_time.perf_counter() - t0)
        if ws_front.size:
            ws_entry["cov"].append(range_coverage(ws_front, axis=1, low=0, high=1))
            ws_entry["hv"].append(hypervolume_ref(ws_front, REF))
            ws_entry["spr"].append(spread(ws_front))
        else:
            ws_entry["cov"].append(0.0)
            ws_entry["hv"].append(0.0)
            ws_entry["spr"].append(float("nan"))

        for name, result in run_all(seed).items():
            front = result.front_objectives
            entry = scores[name]
            entry["time"].append(result.wall_time)
            if front.size == 0:
                entry["cov"].append(0.0)
                entry["hv"].append(0.0)
                entry["spr"].append(float("nan"))
                continue
            entry["cov"].append(range_coverage(front, axis=1, low=0, high=1))
            entry["hv"].append(hypervolume_ref(front, REF))
            entry["spr"].append(spread(front))

    rows = []
    base_time = np.mean(scores["NSGA-II"]["time"])
    for name, entry in scores.items():
        rows.append(
            [
                name,
                float(np.median(entry["cov"])),
                float(np.median(entry["hv"])),
                float(np.nanmedian(entry["spr"])),
                (np.mean(entry["time"]) / base_time - 1.0) * 100.0,
            ]
        )
    print(f"{args.seeds} seed(s), budget {BUDGET} generations, pop {POPULATION}:")
    print(
        format_table(
            ["algorithm", "coverage", "hv_ref", "spread(lower=better)", "overhead_%"],
            rows,
        )
    )
    print(
        "\nExpected (the paper's trend): coverage and hv_ref order "
        "MESACGA >= SACGA > NSGA-II > weighted-sum; overhead bounded "
        "(~18% in the paper).  The weighted-sum row is the classical "
        "scalarized approach the paper's Section 1 argues against."
    )


if __name__ == "__main__":
    main()
