"""Quickstart: SACGA on a cheap constrained two-objective problem.

Runs in a couple of seconds and shows the core API surface:

* define / pick a :class:`repro.problems.Problem`;
* partition the objective space along one objective;
* run :class:`repro.SACGA` and inspect the Pareto front.

Usage::

    python examples/quickstart.py
"""

import numpy as np

from repro import SACGA, PartitionGrid
from repro.metrics import hypervolume_ref, range_coverage
from repro.problems import ClusteredFeasibility


def main() -> None:
    # A problem whose feasible region is abundant at one end of the
    # trade-off axis and rare at the other — the pathology SACGA fixes.
    problem = ClusteredFeasibility(n_var=8, tightness=0.02)

    # Partition the objective space into 6 slices of f2 (the coverage
    # deficit); local competition inside each slice protects immature
    # designs from global elimination.
    grid = PartitionGrid(axis=1, low=0.0, high=1.0, n_partitions=6)

    algorithm = SACGA(problem, grid, population_size=64, seed=42)
    result = algorithm.run(n_generations=120)

    front = result.front_objectives
    order = np.argsort(front[:, 1])
    print(f"algorithm : {result.algorithm}")
    print(f"evaluations: {result.n_evaluations}")
    print(f"front size : {result.front_size}")
    print(f"coverage   : {range_coverage(front, axis=1, low=0, high=1):.2f}")
    print(f"hv (ref 2,1): {hypervolume_ref(front, (2.0, 1.0)):.3f}")
    print("\n  f1 (cost)   f2 (deficit)")
    for i in order[:: max(1, len(order) // 12)]:
        print(f"  {front[i, 0]:9.4f}   {front[i, 1]:9.4f}")


if __name__ == "__main__":
    main()
