"""Run-time diagnostics: feasibility ramp, coverage milestones, HV curves.

Demonstrates the instrumentation stack around an optimizer run:

* a :class:`~repro.core.archive.ParetoArchive` attached as a callback so
  no feasible design discovered mid-run is ever lost;
* :mod:`repro.experiments.history_analysis` convergence curves — when
  did the population become feasible, when did coverage reach 50 %, how
  much did the last quarter of the budget still improve the front;
* an ASCII rendering of the hypervolume trajectory.

Usage::

    python examples/convergence_diagnostics.py [--generations N]
"""

import argparse

from repro import SACGA, ParetoArchive
from repro.circuits import IntegratorSizingProblem
from repro.experiments import (
    DesignSurface,
    ascii_series,
    coverage_curve,
    feasibility_curve,
    first_feasible_generation,
    hv_ref_curve,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--generations", type=int, default=200)
    parser.add_argument("--population", type=int, default=80)
    args = parser.parse_args()

    problem = IntegratorSizingProblem()
    algorithm = SACGA(
        problem,
        problem.partition_grid(8),
        population_size=args.population,
        seed=11,
    )
    archive = ParetoArchive(capacity=400)
    algorithm.add_callback(archive.observe)

    result = algorithm.run(args.generations)

    print(f"run: {result.algorithm}, {result.n_evaluations} evaluations, "
          f"{result.wall_time:.1f}s")
    print(f"first feasible generation: {first_feasible_generation(result)}")

    cov = coverage_curve(result)
    for milestone in (0.25, 0.5, 0.75):
        gen = cov.first_generation_reaching(milestone)
        print(f"coverage >= {milestone:.2f}: "
              f"{'generation ' + str(gen) if gen is not None else 'not reached'}")

    feas = feasibility_curve(result)
    print(f"feasible members at the end: {int(feas.final)} "
          f"of {result.population.size}")

    hv = hv_ref_curve(result)
    if hv.values.size >= 8:
        tail = hv.improvement_over(max(1, hv.values.size // 4))
        print(f"hv_ref gain over the last quarter of the run: {tail:.3e}")
        print()
        print(ascii_series(
            hv.generations, hv.values,
            x_label="generation", y_label="hv_ref",
        ))

    print()
    print(f"archive: {archive.size} designs accumulated "
          f"({archive.n_observed} feasible observations)")
    if archive.size and result.front_size:
        surface_final = DesignSurface(
            result.front_x,
            5e-12 - result.front_objectives[:, 1],
            result.front_objectives[:, 0],
        )
        surface_archive = DesignSurface(
            archive.x, 5e-12 - archive.objectives[:, 1], archive.objectives[:, 0]
        )
        lo_f, hi_f = surface_final.load_range
        lo_a, hi_a = surface_archive.load_range
        print(f"final-population surface: {len(surface_final)} pts, "
              f"{lo_f * 1e12:.2f}-{hi_f * 1e12:.2f} pF")
        print(f"archive surface         : {len(surface_archive)} pts, "
              f"{lo_a * 1e12:.2f}-{hi_a * 1e12:.2f} pF")


if __name__ == "__main__":
    main()
