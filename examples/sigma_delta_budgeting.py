"""System-level use of the design surface: budgeting a 4th-order
sigma-delta modulator.

The paper's motivation (Section 1-2): subsystem-level design decisions
need the *optimal design surface* of each component circuit, not a single
sizing.  Here we:

1. explore the integrator's power-vs-load surface once with SACGA;
2. budget a fourth-order modulator (a chain of four integrators, each
   loaded by the sampling network of its successor) by reading the
   surface at each stage's actual load;
3. compare against the naive approach of reusing one worst-case design
   for all four stages.

Usage::

    python examples/sigma_delta_budgeting.py [--generations N]
"""

import argparse

import numpy as np

from repro import SACGA
from repro.circuits import (
    C_LOAD_MAX,
    DEFAULT_GAINS_4TH_ORDER,
    IntegratorSizingProblem,
    SigmaDeltaModulator,
    StageModel,
    analyze_integrator,
    modulator_snr,
)
from repro.experiments.reporting import format_table
from repro.experiments.tradeoff import DesignSurface


def explore_surface(generations: int, population: int):
    """One SACGA run -> (DesignSurface, problem)."""
    problem = IntegratorSizingProblem()
    result = SACGA(
        problem,
        problem.partition_grid(8),
        population_size=population,
        seed=2005,
    ).run(generations)
    if result.front_size == 0:
        raise RuntimeError("exploration found no feasible designs; raise the budget")
    return DesignSurface.from_result(result), problem


def pick(surface: DesignSurface, required: float):
    """Cheapest capable design, falling back to the strongest stored one."""
    try:
        return surface.design_for(required)
    except ValueError:
        i = surface.size - 1
        return surface.x[i], float(surface.c_load[i]), float(surface.power[i])


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--generations", type=int, default=200)
    parser.add_argument("--population", type=int, default=80)
    args = parser.parse_args()

    surface, problem = explore_surface(args.generations, args.population)
    lo, hi = surface.load_range
    print(
        f"design surface: {len(surface)} points, "
        f"{lo * 1e12:.2f}-{hi * 1e12:.2f} pF"
    )

    # Stage loads of a 4th-order modulator: each integrator drives the
    # next stage's sampling capacitor; later stages see relaxed noise
    # requirements, hence smaller sampling capacitors (standard SD
    # scaling), and the last stage drives the comparator only.
    stage_loads = np.array([3.2e-12, 1.6e-12, 0.8e-12, 0.3e-12])

    rows = []
    total = 0.0
    picked = []
    for stage, load in enumerate(stage_loads, start=1):
        x, _, power = pick(surface, load)
        picked.append(x)
        perf = problem.performance_report(x.reshape(1, -1))[0]
        total += power
        rows.append(
            [
                f"integrator {stage}",
                load * 1e12,
                perf["c_load_pF"],
                perf["power_mW"],
                perf["dr_dB"],
                perf["st_ns"],
            ]
        )
    print("\nPer-stage selection from the surface:")
    print(
        format_table(
            ["stage", "load_pF", "design_drives_pF", "power_mW", "DR_dB", "ST_ns"],
            rows,
        )
    )

    # Naive alternative: one worst-case design (drives the stage-1 load)
    # instantiated four times.
    _, _, worst_power = pick(surface, stage_loads.max())
    naive_total = 4 * worst_power
    print(f"\nsurface-guided modulator power: {total * 1e3:.3f} mW")
    print(f"worst-case-reuse modulator power: {naive_total * 1e3:.3f} mW")
    if naive_total > 0:
        saving = (1.0 - total / naive_total) * 100.0
        print(f"saving from using the design surface: {saving:.1f}%")

    # Close the loop: simulate the 4th-order modulator behaviorally with
    # each stage carrying its selected circuit's non-idealities.
    stages = []
    for stage, x in enumerate(picked):
        perf = analyze_integrator(
            problem.tech, problem.build_design(x.reshape(1, -1))
        )
        stages.append(
            StageModel.from_performance(
                perf, gain=DEFAULT_GAINS_4TH_ORDER[stage]
            )
        )
    modulator = SigmaDeltaModulator(stages=stages, seed=1)
    snr = modulator_snr(modulator, oversampling_ratio=96, amplitude=0.45)
    print(f"\nbehavioral 4th-order modulator simulation: SNR = {snr:.1f} dB "
          f"(OSR 96, -6.9 dBFS tone)")


if __name__ == "__main__":
    main()
