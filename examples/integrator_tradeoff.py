"""The paper's headline experiment: the power / load-capacitance design
surface of a CDS switched-capacitor integrator.

Runs NSGA-II (the paper's "traditional purely global" baseline) and
SACGA on the 15-parameter sizing problem at a reduced budget, prints
both fronts, and shows the full circuit-level report for three designs
picked off the SACGA surface.

Usage::

    python examples/integrator_tradeoff.py [--generations N] [--population N]
"""

import argparse

import numpy as np

from repro import NSGA2, SACGA
from repro.circuits import C_LOAD_MAX, IntegratorSizingProblem
from repro.experiments.reporting import format_table, overlay_series
from repro.metrics import range_coverage


def run(generations: int, population: int) -> None:
    print("== NSGA-II (traditional purely-global competition) ==")
    problem = IntegratorSizingProblem()
    tpg = NSGA2(problem, population_size=population, seed=7).run(generations)
    report_front("NSGA-II", tpg.front_objectives)

    print("\n== SACGA, 8 partitions along the load-capacitance range ==")
    problem = IntegratorSizingProblem()
    sacga = SACGA(
        problem,
        problem.partition_grid(8),
        population_size=population,
        seed=7,
    ).run(generations)
    report_front("SACGA", sacga.front_objectives)

    print()
    print(
        overlay_series(
            [
                ("NSGA-II", *to_xy(tpg.front_objectives), "o"),
                ("SACGA", *to_xy(sacga.front_objectives), "*"),
            ],
            x_label="c_load (pF)",
            y_label="power (mW)",
        )
    )

    # Inspect three designs across the SACGA surface in circuit terms.
    front = sacga.front_objectives
    if front.shape[0] >= 3:
        order = np.argsort(front[:, 1])
        picks = [order[0], order[len(order) // 2], order[-1]]
        x_picks = sacga.front_x[picks]
        rows = []
        for record in problem.performance_report(x_picks):
            rows.append(
                [
                    record["c_load_pF"],
                    record["power_mW"],
                    record["dr_dB"],
                    record["or_V"],
                    record["st_ns"],
                    record["pm_deg"],
                    record["area_um2"],
                ]
            )
        print("\nSelected designs off the SACGA surface:")
        print(
            format_table(
                ["c_load_pF", "power_mW", "DR_dB", "OR_V", "ST_ns", "PM_deg", "area_um2"],
                rows,
            )
        )

        # Full datasheet for the strongest design (drives the most load).
        from repro.circuits import datasheet

        print("\n" + datasheet(x_picks[-1], problem))


def to_xy(front: np.ndarray):
    if front.size == 0:
        return np.zeros(0), np.zeros(0)
    return (C_LOAD_MAX - front[:, 1]) * 1e12, front[:, 0] * 1e3


def report_front(name: str, front: np.ndarray) -> None:
    if front.shape[0] == 0:
        print(f"{name}: no feasible designs found at this budget")
        return
    c_load = (C_LOAD_MAX - front[:, 1]) * 1e12
    power = front[:, 0] * 1e3
    coverage = range_coverage(front, axis=1, low=0.0, high=C_LOAD_MAX)
    print(
        f"{name}: {front.shape[0]} designs, load range "
        f"{c_load.min():.2f}-{c_load.max():.2f} pF, power "
        f"{power.min():.3f}-{power.max():.3f} mW, coverage {coverage:.2f}"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--generations", type=int, default=200)
    parser.add_argument("--population", type=int, default=80)
    args = parser.parse_args()
    run(args.generations, args.population)


if __name__ == "__main__":
    main()
